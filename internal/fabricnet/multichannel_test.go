package fabricnet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/peer"
)

// wipeChannelStore removes one peer's store for one channel, simulating a
// partially lost data directory.
func wipeChannelStore(dataDir, peerName, channelID string) error {
	return os.RemoveAll(filepath.Join(dataDir, peerName, channelID))
}

// newMultiNet assembles the paper topology over the given channels.
func newMultiNet(t *testing.T, blockSize int, committer peer.CommitterConfig, channels ...string) *Network {
	t.Helper()
	cfg := PaperConfig(blockSize, true)
	cfg.Channels = channels
	cfg.Orderer.BatchTimeout = 100 * time.Millisecond
	cfg.Committer = committer
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallChaincode("iot", iotCC(), testPolicy); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewRejectsBadChannelLists(t *testing.T) {
	for name, channels := range map[string][]string{
		"duplicate": {"ch1", "ch1"},
		"empty":     {"ch1", ""},
		"unsafe":    {"ch/1"},
	} {
		cfg := PaperConfig(10, true)
		cfg.Channels = channels
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: channel list %q accepted", name, channels)
		}
	}
}

// TestMultiChannelNetworkCommitsInParallel drives concurrent traffic into
// two channels of one network: both must commit everything, converge on
// every peer, and stay fully independent (own heights, own documents, own
// ordering services).
func TestMultiChannelNetworkCommitsInParallel(t *testing.T) {
	n := newMultiNet(t, 10, peer.CommitterConfig{}, "ch1", "ch2")
	if got := n.Channels(); !reflect.DeepEqual(got, []string{"ch1", "ch2"}) {
		t.Fatalf("Channels = %v", got)
	}
	s1, err := n.OrdererOn("ch1")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := n.OrdererOn("ch2")
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("channels share an ordering service")
	}
	if _, err := n.OrdererOn("nope"); err == nil {
		t.Fatal("unknown channel resolved an orderer")
	}
	n.Start()
	defer n.Stop()

	const perChannel = 20
	var wg sync.WaitGroup
	for _, ch := range []string{"ch1", "ch2"} {
		c, err := n.NewClientOn(ch, "Org1", "client-"+ch, []string{"Org1"})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perChannel; i++ {
			wg.Add(1)
			go func(c interface {
				SubmitAndWait(time.Duration, string, ...[]byte) (ledger.ValidationCode, error)
			}, ch string, i int) {
				defer wg.Done()
				if _, err := c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("dev1"), []byte(fmt.Sprintf("%s-%d", ch, i))); err != nil {
					t.Errorf("%s tx %d: %v", ch, i, err)
				}
			}(c, ch, i)
		}
	}
	wg.Wait()
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}

	// Each channel converged across all six peers, independently.
	for _, ch := range []string{"ch1", "ch2"} {
		var want []byte
		for _, p := range n.Peers() {
			db, err := p.DBOn(ch)
			if err != nil {
				t.Fatal(err)
			}
			vv, ok := db.Get("dev1")
			if !ok {
				t.Fatalf("peer %s missing dev1 on %s", p.Name(), ch)
			}
			if want == nil {
				want = vv.Value
				var doc map[string]any
				if err := json.Unmarshal(vv.Value, &doc); err != nil {
					t.Fatal(err)
				}
				if readings := doc["tempReadings"].([]any); len(readings) != perChannel {
					t.Fatalf("%s readings = %d, want %d (no update loss per channel)", ch, len(readings), perChannel)
				}
				continue
			}
			if string(vv.Value) != string(want) {
				t.Fatalf("peer %s diverged on %s", p.Name(), ch)
			}
			chain, err := p.ChainOn(ch)
			if err != nil {
				t.Fatal(err)
			}
			if err := chain.Verify(); err != nil {
				t.Fatalf("peer %s chain on %s: %v", p.Name(), ch, err)
			}
		}
	}
	// The two channels hold different documents (different readings), and
	// block numbering advanced independently on each.
	db1, _ := n.Peers()[0].DBOn("ch1")
	db2, _ := n.Peers()[0].DBOn("ch2")
	v1, _ := db1.Get("dev1")
	v2, _ := db2.Get("dev1")
	if string(v1.Value) == string(v2.Value) {
		t.Fatal("channels returned identical documents — state is shared, not sharded")
	}
	for _, ch := range []string{"ch1", "ch2"} {
		h, err := n.Peers()[0].HeightOn(ch)
		if err != nil {
			t.Fatal(err)
		}
		if h == 0 {
			t.Fatalf("channel %s committed no blocks", ch)
		}
	}
}

// TestMultiClientRoundRobin spreads submissions over both channels via the
// facade's round-robin helper and checks both shards advanced.
func TestMultiClientRoundRobin(t *testing.T) {
	n := newMultiNet(t, 5, peer.CommitterConfig{}, "ch1", "ch2")
	n.Start()
	defer n.Stop()
	mc, err := n.NewMultiClient("Org2", "rr-client", []string{"Org2"})
	if err != nil {
		t.Fatal(err)
	}
	if got := mc.Channels(); !reflect.DeepEqual(got, []string{"ch1", "ch2"}) {
		t.Fatalf("MultiClient channels = %v", got)
	}
	const total = 20
	counts := make(map[string]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch, code, err := mc.SubmitAndWaitRoundRobin(10*time.Second, "iot", []byte("record"), []byte("devRR"), []byte(fmt.Sprintf("%d", i)))
			if err != nil {
				t.Errorf("tx %d: %v", i, err)
				return
			}
			if !code.Committed() {
				t.Errorf("tx %d: code %v", i, code)
				return
			}
			mu.Lock()
			counts[ch]++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}
	if counts["ch1"] != total/2 || counts["ch2"] != total/2 {
		t.Fatalf("round-robin split = %v, want %d/%d", counts, total/2, total/2)
	}
	// Named-channel submit + per-channel client access also work.
	if _, err := mc.On("ch2"); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.On("nope"); err == nil {
		t.Fatal("unknown channel resolved")
	}
}

// TestTwoChannelNetworkRestart is the acceptance test: a disk-backed
// 2-channel network is stopped with its channels at different heights and
// rebuilt over the same directory — every peer must resume each channel at
// its own height with byte-identical per-channel state, and both channels
// must keep committing from their own resume points.
func TestTwoChannelNetworkRestart(t *testing.T) {
	dir := t.TempDir()
	committer := peer.CommitterConfig{Backend: peer.BackendDisk, DataDir: dir}

	n := newMultiNet(t, 10, committer, "ch1", "ch2")
	n.Start()
	// Unequal load: ch1 gets 3× the traffic of ch2, so the channels stop
	// at different heights.
	submitOn := func(n *Network, ch string, count, base int) {
		t.Helper()
		c, err := n.NewClientOn(ch, "Org1", fmt.Sprintf("client-%s-%d", ch, base), []string{"Org1"})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, count)
		for i := 0; i < count; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("dev1"), []byte(fmt.Sprintf("%d", base+i)))
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s tx %d: %v", ch, i, err)
			}
		}
	}
	submitOn(n, "ch1", 30, 0)
	submitOn(n, "ch2", 10, 0)
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}

	heights := make(map[string]uint64)
	states := make(map[string][]byte)
	for _, ch := range []string{"ch1", "ch2"} {
		h, err := n.Peers()[0].HeightOn(ch)
		if err != nil {
			t.Fatal(err)
		}
		if h == 0 {
			t.Fatalf("channel %s committed nothing before restart", ch)
		}
		heights[ch] = h
		db, err := n.Peers()[0].DBOn(ch)
		if err != nil {
			t.Fatal(err)
		}
		vv, ok := db.Get("dev1")
		if !ok {
			t.Fatalf("dev1 missing on %s before restart", ch)
		}
		states[ch] = vv.Value
	}
	if heights["ch1"] == heights["ch2"] {
		t.Fatalf("channels stopped at the same height (%d) — the test needs diverging heights", heights["ch1"])
	}

	// Rebuild the whole network over the same directory.
	n2 := newMultiNet(t, 10, committer, "ch1", "ch2")
	for _, p := range n2.Peers() {
		for _, ch := range []string{"ch1", "ch2"} {
			got, err := p.HeightOn(ch)
			if err != nil {
				t.Fatal(err)
			}
			if got != heights[ch] {
				t.Fatalf("peer %s resumed %s at %d, want %d", p.Name(), ch, got, heights[ch])
			}
			db, err := p.DBOn(ch)
			if err != nil {
				t.Fatal(err)
			}
			vv, ok := db.Get("dev1")
			if !ok || string(vv.Value) != string(states[ch]) {
				t.Fatalf("peer %s state on %s diverged across restart", p.Name(), ch)
			}
		}
	}
	n2.Start()
	submitOn(n2, "ch1", 10, 1000)
	submitOn(n2, "ch2", 10, 1000)
	n2.Stop()
	if err := n2.Err(); err != nil {
		t.Fatal(err)
	}
	for _, p := range n2.Peers() {
		for _, ch := range []string{"ch1", "ch2"} {
			got, err := p.HeightOn(ch)
			if err != nil {
				t.Fatal(err)
			}
			if got <= heights[ch] {
				t.Fatalf("peer %s channel %s did not advance past %d", p.Name(), ch, heights[ch])
			}
			chain, err := p.ChainOn(ch)
			if err != nil {
				t.Fatal(err)
			}
			if err := chain.Verify(); err != nil {
				t.Fatalf("peer %s chain on %s after restart: %v", p.Name(), ch, err)
			}
		}
	}
	// No update loss on either channel across the restart.
	for ch, before := range map[string]int{"ch1": 30, "ch2": 10} {
		db, err := n2.Peers()[0].DBOn(ch)
		if err != nil {
			t.Fatal(err)
		}
		vv, _ := db.Get("dev1")
		var doc map[string]any
		if err := json.Unmarshal(vv.Value, &doc); err != nil {
			t.Fatal(err)
		}
		if readings := doc["tempReadings"].([]any); len(readings) != before+10 {
			t.Fatalf("%s readings after restart = %d, want %d", ch, len(readings), before+10)
		}
	}
}

// TestTwoChannelRestartRejectsPartialWipe wipes one peer's single-channel
// store between runs: the network must refuse to assemble rather than let
// that channel resume from diverging histories — while the intact channel
// alone would have been fine.
func TestTwoChannelRestartRejectsPartialWipe(t *testing.T) {
	dir := t.TempDir()
	committer := peer.CommitterConfig{Backend: peer.BackendDisk, DataDir: dir}
	n := newMultiNet(t, 10, committer, "ch1", "ch2")
	n.Start()
	c, err := n.NewClientOn("ch2", "Org1", "client0", []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("dev1"), []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}
	if err := wipeChannelStore(dir, "Org2.peer1", "ch2"); err != nil {
		t.Fatal(err)
	}
	cfg := PaperConfig(10, true)
	cfg.Channels = []string{"ch1", "ch2"}
	cfg.Committer = committer
	if _, err := New(cfg); err == nil {
		t.Fatal("network assembled with one channel's stores at diverging heights")
	}
}
