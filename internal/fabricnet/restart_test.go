package fabricnet

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fabriccrdt/internal/peer"
)

// newDiskNet assembles the paper topology with every peer persisting under
// dir/<peer-name>.
func newDiskNet(t *testing.T, dir string) *Network {
	t.Helper()
	cfg := PaperConfig(10, true)
	cfg.Orderer.BatchTimeout = 100 * time.Millisecond
	cfg.Committer = peer.CommitterConfig{Backend: peer.BackendDisk, DataDir: dir}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.InstallChaincode("iot", iotCC(), testPolicy); err != nil {
		t.Fatal(err)
	}
	return n
}

func submitReadings(t *testing.T, n *Network, count, base int) {
	t.Helper()
	c, err := n.NewClient("Org1", fmt.Sprintf("client-%d", base), []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, count)
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("dev1"), []byte(fmt.Sprintf("%d", base+i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
}

// TestNetworkRestartFromDisk stops a disk-backed network and rebuilds it
// over the same data directory: every peer must resume at the recorded
// height with identical state, the rebuilt orderer must continue block
// numbering from the checkpoint, and new traffic must keep extending the
// restored CRDT documents.
func TestNetworkRestartFromDisk(t *testing.T) {
	dir := t.TempDir()

	n := newDiskNet(t, dir)
	n.Start()
	submitReadings(t, n, 20, 0)
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}
	vvBefore, ok := n.Peers()[0].DB().Get("dev1")
	if !ok {
		t.Fatal("dev1 missing before restart")
	}
	heightBefore := n.Peers()[0].Height()
	if heightBefore == 0 {
		t.Fatal("no blocks committed before restart")
	}

	// Rebuild the whole network over the same directory.
	n2 := newDiskNet(t, dir)
	for _, p := range n2.Peers() {
		if got := p.Height(); got != heightBefore {
			t.Fatalf("peer %s resumed at %d, want %d", p.Name(), got, heightBefore)
		}
		vv, ok := p.DB().Get("dev1")
		if !ok || string(vv.Value) != string(vvBefore.Value) {
			t.Fatalf("peer %s state diverged across restart", p.Name())
		}
	}
	// The rebuilt peers kept their block bodies (block persistence is on
	// by default with the disk backend): the pre-restart history is
	// servable from block 0 and the world state is re-derivable from it.
	p0 := n2.Peers()[0]
	for num := uint64(0); num <= heightBefore; num++ {
		if _, err := p0.Chain().Get(num); err != nil {
			t.Fatalf("restarted peer cannot serve block %d: %v", num, err)
		}
	}
	if err := p0.RebuildState(); err != nil {
		t.Fatalf("RebuildState on a restarted network peer: %v", err)
	}
	if vv, ok := p0.DB().Get("dev1"); !ok || string(vv.Value) != string(vvBefore.Value) {
		t.Fatal("rebuilt state diverged from the pre-restart state")
	}
	n2.Start()
	submitReadings(t, n2, 20, 1000)
	n2.Stop()
	if err := n2.Err(); err != nil {
		t.Fatal(err)
	}
	for _, p := range n2.Peers() {
		if got := p.Height(); got <= heightBefore {
			t.Fatalf("peer %s did not advance past %d", p.Name(), heightBefore)
		}
		if err := p.Chain().Verify(); err != nil {
			t.Fatalf("peer %s chain after restart: %v", p.Name(), err)
		}
	}
	vv, _ := n2.Peers()[0].DB().Get("dev1")
	var doc map[string]any
	if err := json.Unmarshal(vv.Value, &doc); err != nil {
		t.Fatal(err)
	}
	if readings := doc["tempReadings"].([]any); len(readings) != 40 {
		t.Fatalf("readings after restart run = %d, want 40 (20 per run, no update loss)", len(readings))
	}
}

// TestNetworkRestartRejectsDivergedHeights wipes one peer's store between
// runs: the network must refuse to assemble rather than let peers resume
// from different histories.
func TestNetworkRestartRejectsDivergedHeights(t *testing.T) {
	dir := t.TempDir()
	n := newDiskNet(t, dir)
	n.Start()
	submitReadings(t, n, 10, 0)
	n.Stop()
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, "Org2.peer1")); err != nil {
		t.Fatal(err)
	}
	cfg := PaperConfig(10, true)
	cfg.Committer = peer.CommitterConfig{Backend: peer.BackendDisk, DataDir: dir}
	if _, err := New(cfg); err == nil {
		t.Fatal("network assembled with peers at diverging heights")
	}
}

// TestNewRejectsBadBackend covers the network-level plumbing of the
// backend knob.
func TestNewRejectsBadBackend(t *testing.T) {
	cfg := PaperConfig(10, true)
	cfg.Committer = peer.CommitterConfig{Backend: "bogus"}
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown backend accepted")
	}
	cfg.Committer = peer.CommitterConfig{Backend: peer.BackendDisk}
	if _, err := New(cfg); err == nil {
		t.Fatal("disk backend without DataDir accepted")
	}
}
