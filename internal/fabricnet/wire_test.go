package fabricnet

import (
	"reflect"
	"testing"
	"time"

	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/peer"
	"fabriccrdt/internal/transport"
	"fabriccrdt/internal/wire"
)

// serveWire puts the network's transport node behind a real TCP listener
// and returns a dialed client.
func serveWire(t *testing.T, n *Network) *wire.Client {
	t.Helper()
	srv := wire.NewServer(n.Node(), n.Node().NodeInfo)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := wire.Dial(addr.String(), wire.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestWireSlowRemoteConsumer re-proves the PR 4 orderer fan-out regression
// across the socket boundary: a remote subscriber that opens a deliver
// stream and NEVER reads must not wedge ordering, in-process commits, or
// shutdown — its lag is absorbed by the channel History's cursor, and the
// orderer never blocks on it.
func TestWireSlowRemoteConsumer(t *testing.T) {
	n := newNet(t, 10, true)
	n.Start()
	defer n.Stop()
	wc := serveWire(t, n)

	// The hostile consumer: opens the stream, never calls Recv.
	stuck, err := wc.Deliver(n.DefaultChannel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer stuck.Close()

	// Every submission completing under a never-reading remote subscriber
	// IS the regression proof — with per-subscriber queues this wedged.
	submitAll(t, n, 30)
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}

	// A live remote consumer on the same connection sees the full chain.
	height, err := n.Peers()[0].HeightOn(n.DefaultChannel())
	if err != nil {
		t.Fatal(err)
	}
	if height == 0 {
		t.Fatal("no blocks committed")
	}
	live, err := wc.Deliver(n.DefaultChannel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	for want := uint64(1); want <= height; want++ {
		b, err := live.Recv()
		if err != nil {
			t.Fatalf("live remote consumer at block %d: %v", want, err)
		}
		if b.Header.Number != want {
			t.Fatalf("live remote consumer got block %d, want %d", b.Header.Number, want)
		}
	}
}

// TestWireRemotePeerCatchUp runs a seventh peer OUTSIDE the network,
// connected only through the wire transport, and has the standard deliver
// loop catch it up from block 1 — the full chain crosses the socket framed
// and checksummed, commits through the normal pipeline, and lands on
// byte-identical world state.
func TestWireRemotePeerCatchUp(t *testing.T) {
	n := newNet(t, 10, true)
	n.Start()
	defer n.Stop()
	submitAll(t, n, 30)

	// Build the late-joining peer against the SAME MSP roots but outside
	// the network's delivery plane.
	ca, err := cryptoid.NewCA("Org9")
	if err != nil {
		t.Fatal(err)
	}
	msp := n.MSP()
	msp.AddOrg("Org9", ca.PublicKey())
	signer, err := ca.Issue("Org9.peer0")
	if err != nil {
		t.Fatal(err)
	}
	late, err := peer.New(peer.Config{
		Name: "Org9.peer0", MSPID: "Org9",
		Channels:   []string{n.DefaultChannel()},
		EnableCRDT: true,
	}, signer, msp)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	late.InstallChaincode("iot", iotCC(), endorse.MustParse(testPolicy))

	wc := serveWire(t, n)
	done := make(chan error, 1)
	stop := make(chan struct{})
	go func() {
		done <- transport.DeliverToPeer(wc, late, transport.DeliverConfig{
			ChannelID: n.DefaultChannel(),
			Backoff:   time.Millisecond,
		}, stop)
	}()

	// Wait for the late peer to reach the network height, then stop it.
	target, err := n.Peers()[0].HeightOn(n.DefaultChannel())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		h, err := late.HeightOn(n.DefaultChannel())
		if err != nil {
			t.Fatal(err)
		}
		if h >= target {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("late peer stuck at height %d, want %d", h, target)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("deliver loop: %v", err)
	}

	// Byte-identical world state with the in-network peers.
	if !reflect.DeepEqual(late.DB().GetRange("", ""), n.Peers()[0].DB().GetRange("", "")) {
		t.Fatal("late wire-synced peer diverged from the network")
	}
}
