package blockstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fabriccrdt/internal/ledger"
)

// makeChain builds n+1 deterministic hash-chained blocks (genesis plus n
// single-transaction blocks) for the tests to store.
func makeChain(t *testing.T, n int) []*ledger.Block {
	t.Helper()
	chain := ledger.NewChain("ch1")
	for i := 1; i <= n; i++ {
		num, hash := chain.LastRef()
		txs := []*ledger.Transaction{{
			ID: fmt.Sprintf("tx-%d", i), ChannelID: "ch1", Chaincode: "cc",
		}}
		dataHash, err := ledger.ComputeDataHash(txs)
		if err != nil {
			t.Fatal(err)
		}
		b := &ledger.Block{
			Header:       ledger.BlockHeader{Number: num + 1, PrevHash: hash, DataHash: dataHash},
			Transactions: txs,
			Metadata:     ledger.BlockMetadata{ValidationCodes: []ledger.ValidationCode{ledger.CodeValid}},
		}
		if err := chain.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return chain.Blocks()
}

func appendAll(t *testing.T, s *Store, blocks []*ledger.Block) {
	t.Helper()
	for _, b := range blocks {
		if err := s.Append(b); err != nil {
			t.Fatalf("append block %d: %v", b.Header.Number, err)
		}
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// requireBlocks checks that the store serves exactly blocks[0..n) with
// matching header hashes, via Get and Iterate, and not block n.
func requireBlocks(t *testing.T, s *Store, blocks []*ledger.Block) {
	t.Helper()
	if got, want := s.Height(), uint64(len(blocks)); got != want {
		t.Fatalf("height = %d, want %d", got, want)
	}
	for i, want := range blocks {
		got, err := s.Get(uint64(i))
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if !bytes.Equal(got.HeaderHash(), want.HeaderHash()) {
			t.Fatalf("Get(%d): header hash mismatch", i)
		}
		if len(got.Metadata.ValidationCodes) != len(want.Metadata.ValidationCodes) {
			t.Fatalf("Get(%d): validation codes lost", i)
		}
	}
	if _, err := s.Get(uint64(len(blocks))); !errors.Is(err, ledger.ErrBlockNotFound) {
		t.Fatalf("Get past height: %v, want ErrBlockNotFound", err)
	}
	var seen uint64
	if err := s.Iterate(0, func(b *ledger.Block) error {
		if b.Header.Number != seen {
			return fmt.Errorf("iterate out of order: got %d, want %d", b.Header.Number, seen)
		}
		seen++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != uint64(len(blocks)) {
		t.Fatalf("iterated %d blocks, want %d", seen, len(blocks))
	}
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	blocks := makeChain(t, 5)
	s := mustOpen(t, dir)
	appendAll(t, s, blocks)
	requireBlocks(t, s, blocks)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen (index sidecar present): same contents, appends continue.
	s = mustOpen(t, dir)
	requireBlocks(t, s, blocks)
	if err := s.Append(blocks[2]); err == nil {
		t.Fatal("out-of-sequence append accepted after reopen")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen without the sidecar: the log alone is authoritative.
	if err := os.Remove(filepath.Join(dir, idxFileName)); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir)
	defer s.Close()
	requireBlocks(t, s, blocks)
}

func TestAppendEnforcesSequence(t *testing.T) {
	blocks := makeChain(t, 2)
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	if err := s.Append(blocks[1]); err == nil {
		t.Fatal("append of block 1 to an empty store accepted")
	}
	appendAll(t, s, blocks)
	if err := s.Append(blocks[2]); err == nil {
		t.Fatal("duplicate append accepted")
	}
}

// TestTornTailTruncatedOnReopen mirrors the statedb disk suite: every
// prefix-truncation of the log's last frame must reopen cleanly with the
// damaged tail dropped, and the store must accept the dropped block again.
func TestTornTailTruncatedOnReopen(t *testing.T) {
	blocks := makeChain(t, 3)
	// Probe the last frame's size once so the cuts can land in its payload
	// tail, inside its header, and right after its header.
	probe := mustOpen(t, t.TempDir())
	appendAll(t, probe, blocks)
	frameSize := probe.size - probe.offsets[len(probe.offsets)-1]
	probe.Close()
	for _, cut := range []int64{1, frameSize - 3, frameSize - frameHeaderLen - 1} {
		dir := t.TempDir()
		s := mustOpen(t, dir)
		appendAll(t, s, blocks)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		logPath := filepath.Join(dir, logFileName)
		info, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(logPath, info.Size()-cut); err != nil {
			t.Fatal(err)
		}
		s = mustOpen(t, dir)
		requireBlocks(t, s, blocks[:len(blocks)-1])
		// The dropped block can be re-appended: the torn tail is gone.
		if err := s.Append(blocks[len(blocks)-1]); err != nil {
			t.Fatalf("cut %d: re-append after truncation: %v", cut, err)
		}
		requireBlocks(t, s, blocks)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptTailBytesTruncatedOnReopen flips a byte inside the last
// frame's payload: the CRC must catch it and reopening must drop exactly
// that frame.
func TestCorruptTailBytesTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	blocks := makeChain(t, 3)
	s := mustOpen(t, dir)
	appendAll(t, s, blocks)
	lastOff := s.offsets[len(s.offsets)-1]
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logFileName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	data[lastOff+frameHeaderLen+4] ^= 0xFF
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// The sidecar indexes the now-corrupt frame; loadIndex must detect the
	// mismatch and fall back to a scan that truncates it.
	s = mustOpen(t, dir)
	defer s.Close()
	requireBlocks(t, s, blocks[:len(blocks)-1])
}

// TestCorruptIndexFallsBackToScan damages the sidecar only: the store must
// ignore it and recover everything from the log.
func TestCorruptIndexFallsBackToScan(t *testing.T) {
	dir := t.TempDir()
	blocks := makeChain(t, 4)
	s := mustOpen(t, dir)
	appendAll(t, s, blocks)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, idxFileName)
	data, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	// Point the last offset somewhere implausible.
	binary.LittleEndian.PutUint64(data[len(data)-8:], 1<<40)
	if err := os.WriteFile(idxPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir)
	defer s.Close()
	requireBlocks(t, s, blocks)
}

// TestStaleIndexScansForward closes the store, removes frames the sidecar
// already covered... the inverse is the realistic crash: frames appended
// AFTER the last sidecar flush. Simulate by saving the sidecar early and
// restoring it after more appends.
func TestStaleIndexScansForward(t *testing.T) {
	dir := t.TempDir()
	blocks := makeChain(t, 6)
	s := mustOpen(t, dir)
	appendAll(t, s, blocks[:3])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	stale, err := os.ReadFile(filepath.Join(dir, idxFileName))
	if err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir)
	appendAll(t, s, blocks[3:])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, idxFileName), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir)
	defer s.Close()
	requireBlocks(t, s, blocks)
}

// TestConcurrentReadsDuringAppend serves Get/Iterate while appending — the
// SyncFrom-while-committing shape. Run with -race.
func TestConcurrentReadsDuringAppend(t *testing.T) {
	blocks := makeChain(t, 40)
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	appendAll(t, s, blocks[:1])
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h := s.Height()
				if h == 0 {
					continue
				}
				if _, err := s.Get(h - 1); err != nil {
					t.Errorf("Get(%d): %v", h-1, err)
					return
				}
				if err := s.Iterate(0, func(*ledger.Block) error { return nil }); err != nil {
					t.Errorf("Iterate: %v", err)
					return
				}
			}
		}()
	}
	appendAll(t, s, blocks[1:])
	wg.Wait()
	requireBlocks(t, s, blocks)
}

func TestClosedStoreRefusesUse(t *testing.T) {
	blocks := makeChain(t, 1)
	s := mustOpen(t, t.TempDir())
	appendAll(t, s, blocks)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := s.Append(blocks[1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if _, err := s.Get(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
}
