// Package blockstore implements the peer's durable block store: an
// append-only log of committed block bodies, one per (peer, channel),
// making the ledger — not just the state database — the recovery root.
// In Fabric the blockchain is the source of truth and the world state a
// rebuildable cache (Androulaki et al., §2.1); with this store a restarted
// peer can serve its full history to lagging peers (Peer.SyncFrom) and
// re-derive its world state from block 0 (Peer.RebuildState), neither of
// which a state checkpoint alone allows.
//
// On-disk layout inside the store directory (DataDir/<channel-ID>/blocks
// through the channel runtime):
//
//	blocks.log   framed block records, appended one per committed block
//	blocks.idx   offset sidecar: where each block's frame starts
//
// The log uses the same framing discipline as the statedb disk backend:
//
//	[4B little-endian payload length][4B CRC32-Castagnoli of payload][payload]
//
// with each payload holding one block (format version byte, block number,
// JSON block body carrying the commit-time validation codes). One Append
// writes exactly one frame, so a crash can only produce a torn *tail*;
// Open truncates a torn or CRC-corrupt tail back to the last intact frame.
//
// The index sidecar is an optimization, never an authority: it is written
// atomically (temp file + rename) on Close and every few hundred appends,
// and Open verifies the last indexed frame before trusting it, then scans
// the log forward for any frames the index has not caught up with. A
// missing, stale or corrupt index just means a full log scan.
package blockstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"fabriccrdt/internal/ledger"
)

const (
	logFileName = "blocks.log"
	idxFileName = "blocks.idx"

	frameHeaderLen = 8
	recordVersion  = 1

	// maxRecordBytes bounds a single record so a corrupt length prefix
	// cannot trigger a multi-gigabyte allocation on open.
	maxRecordBytes = 1 << 30

	// payloadHeaderLen is the per-record prefix before the block body:
	// format version byte + the block number.
	payloadHeaderLen = 1 + 8

	// idxEvery flushes the offset sidecar after this many appends, so a
	// crashed store reopens with at most idxEvery frames to re-scan.
	idxEvery = 256
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed reports use of a closed block store.
var ErrClosed = errors.New("blockstore: store is closed")

// Options tunes a block store.
type Options struct {
	// SyncEveryAppend fsyncs the log after every appended block. Off (the
	// default), blocks reach the OS page cache on Append and the disk on
	// Close or an index flush: a process crash loses nothing, a host power
	// loss may lose the most recent blocks (never corrupting earlier ones)
	// — the same durability window as the statedb disk backend.
	SyncEveryAppend bool
}

// Store is one channel's durable block log. Appends are strictly
// sequential (block n can only follow block n-1, starting from 0); reads
// may run concurrently with appends, so a peer serves history to a
// syncing peer while it keeps committing.
type Store struct {
	dir  string
	opts Options

	mu   sync.RWMutex
	log  *os.File
	size int64
	// offsets[n] is the log offset of block n's frame; the store always
	// covers the contiguous range [0, len(offsets)).
	offsets []int64
	// appendsSinceIdx counts frames not yet covered by the sidecar.
	appendsSinceIdx int
	closed          bool
	// broken disables the write path after a failed append: the file may
	// end in a torn frame, and a frame written after it would be silently
	// dropped by the next open's tail truncation.
	broken bool
	// I/O accounting surfaced via Stats (mu held for writes).
	appends int64
	fsyncs  int64
}

// Stats is the store's I/O accounting, scraped into the obs metrics
// endpoint.
type Stats struct {
	LogBytes int64
	Appends  int64
	Fsyncs   int64
}

// Stats reports the current log size and lifetime append/fsync counts
// (fsyncs include the sidecar-index installs).
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{LogBytes: s.size, Appends: s.appends, Fsyncs: s.fsyncs}
}

// Exists reports whether dir already holds a block log — a cheap probe
// for stores created by an earlier run, without opening (and thereby
// creating) one.
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, logFileName))
	return err == nil
}

// Open opens (creating if needed) the block store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("blockstore: store requires a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blockstore: creating store dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blockstore: opening log: %w", err)
	}
	s := &Store{dir: dir, opts: opts, log: f}
	start := s.loadIndex()
	if err := s.scanFrom(start); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Height returns the number of stored blocks — equivalently, the number
// the next appended block must carry. The store always covers the
// contiguous range [0, Height()).
func (s *Store) Height() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.offsets))
}

// Append writes block b to the log. b must be the next block in sequence
// (Header.Number == Height()); the caller appends blocks exactly as they
// commit, validation codes included, so the log replays into the same
// outcomes the live pipeline produced.
//
// The write path is fail-stop, like the statedb disk log: after the first
// failed append (which may have left a torn frame mid-file) every further
// Append fails — a frame after a torn one would be discarded by the next
// open's tail truncation, faking durability.
func (s *Store) Append(b *ledger.Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return ErrClosed
	case s.broken:
		return errors.New("blockstore: write path disabled by an earlier failed append")
	}
	next := uint64(len(s.offsets))
	if b.Header.Number != next {
		return fmt.Errorf("blockstore: appending block %d out of sequence (next is %d)", b.Header.Number, next)
	}
	body, err := b.Marshal()
	if err != nil {
		return fmt.Errorf("blockstore: encoding block %d: %w", b.Header.Number, err)
	}
	payload := make([]byte, payloadHeaderLen, payloadHeaderLen+len(body))
	payload[0] = recordVersion
	binary.LittleEndian.PutUint64(payload[1:9], b.Header.Number)
	payload = append(payload, body...)
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("blockstore: block record of %d bytes exceeds the %d-byte record limit", len(payload), maxRecordBytes)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeaderLen:], payload)
	if _, err := s.log.Write(frame); err != nil {
		s.broken = true
		return fmt.Errorf("blockstore: appending block %d: %w", b.Header.Number, err)
	}
	if s.opts.SyncEveryAppend {
		if err := s.log.Sync(); err != nil {
			s.broken = true
			return fmt.Errorf("blockstore: syncing log: %w", err)
		}
		s.fsyncs++
	}
	s.offsets = append(s.offsets, s.size)
	s.size += int64(len(frame))
	s.appends++
	s.appendsSinceIdx++
	if s.appendsSinceIdx >= idxEvery {
		// Best-effort: a failed sidecar write only costs the next open a
		// longer scan.
		if s.writeIndexLocked() == nil {
			s.appendsSinceIdx = 0
		}
	}
	return nil
}

// Get returns stored block n. Blocks the store does not hold report
// ledger.ErrBlockNotFound.
func (s *Store) Get(n uint64) (*ledger.Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if n >= uint64(len(s.offsets)) {
		return nil, fmt.Errorf("%w: %d (block store holds [0, %d))", ledger.ErrBlockNotFound, n, len(s.offsets))
	}
	b, _, err := s.readBlockAt(s.offsets[n])
	if err != nil {
		return nil, fmt.Errorf("blockstore: reading block %d: %w", n, err)
	}
	if b.Header.Number != n {
		return nil, fmt.Errorf("blockstore: record at offset %d holds block %d, want %d", s.offsets[n], b.Header.Number, n)
	}
	return b, nil
}

// Iterate calls fn for every stored block numbered from and up, in order,
// stopping at the first error and returning it. Blocks appended after the
// call starts are not visited.
func (s *Store) Iterate(from uint64, fn func(*ledger.Block) error) error {
	height := s.Height()
	for n := from; n < height; n++ {
		b, err := s.Get(n)
		if err != nil {
			return err
		}
		if err := fn(b); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes the log to stable storage. The channel runtime calls it
// before the state store makes anything durable beyond its routine
// appends (snapshot compaction), preserving the recovery invariant that
// the durable state never gets ahead of the block log.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.log.Sync(); err != nil {
		s.broken = true
		return fmt.Errorf("blockstore: syncing log: %w", err)
	}
	s.fsyncs++
	return nil
}

// Close flushes the offset sidecar and the log and closes the store,
// returning the first failure.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if err := s.writeIndexLocked(); err != nil && first == nil {
		first = err
	}
	if err := s.log.Sync(); err != nil && first == nil {
		first = err
	}
	if err := s.log.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// readBlockAt reads and verifies one frame, returning the decoded block
// and the offset just past the frame. Callers hold at least the read lock.
func (s *Store) readBlockAt(off int64) (*ledger.Block, int64, error) {
	var header [frameHeaderLen]byte
	if _, err := s.log.ReadAt(header[:], off); err != nil {
		return nil, 0, fmt.Errorf("torn frame header at offset %d", off)
	}
	length := binary.LittleEndian.Uint32(header[0:4])
	sum := binary.LittleEndian.Uint32(header[4:8])
	if length > maxRecordBytes || length < payloadHeaderLen {
		return nil, 0, fmt.Errorf("implausible record length %d at offset %d", length, off)
	}
	payload := make([]byte, length)
	if _, err := s.log.ReadAt(payload, off+frameHeaderLen); err != nil {
		return nil, 0, fmt.Errorf("torn record payload at offset %d", off)
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, fmt.Errorf("record CRC mismatch at offset %d", off)
	}
	if payload[0] != recordVersion {
		return nil, 0, fmt.Errorf("unsupported record version %d at offset %d", payload[0], off)
	}
	num := binary.LittleEndian.Uint64(payload[1:9])
	b, err := ledger.UnmarshalBlock(payload[payloadHeaderLen:])
	if err != nil {
		return nil, 0, fmt.Errorf("record decode at offset %d: %w", off, err)
	}
	if b.Header.Number != num {
		return nil, 0, fmt.Errorf("record at offset %d claims block %d but holds block %d", off, num, b.Header.Number)
	}
	return b, off + frameHeaderLen + int64(length), nil
}

// scanFrom walks the log from offset start, recording every intact frame's
// offset and truncating anything after the last intact, in-sequence frame
// (the torn or corrupt tail a crash mid-Append leaves behind).
func (s *Store) scanFrom(start int64) error {
	info, err := s.log.Stat()
	if err != nil {
		return fmt.Errorf("blockstore: statting log: %w", err)
	}
	fileSize := info.Size()
	off := start
	for off < fileSize {
		b, end, err := s.readBlockAt(off)
		if err != nil || b.Header.Number != uint64(len(s.offsets)) {
			break
		}
		s.offsets = append(s.offsets, off)
		off = end
	}
	if off < fileSize {
		if err := s.log.Truncate(off); err != nil {
			return fmt.Errorf("blockstore: truncating corrupt log tail: %w", err)
		}
	}
	if _, err := s.log.Seek(off, 0); err != nil {
		return fmt.Errorf("blockstore: seeking log: %w", err)
	}
	s.size = off
	return nil
}

// Index sidecar payload (one CRC frame around it, like the log):
//
//	u8  format version (1)
//	u64 block count
//	u64 end offset of the last indexed frame
//	count × u64 frame offsets
//
// writeIndexLocked writes it via a temp file + rename, so the sidecar is
// either the previous intact one or the new intact one.
func (s *Store) writeIndexLocked() error {
	payload := make([]byte, 0, 1+16+8*len(s.offsets))
	payload = append(payload, recordVersion)
	payload = binary.LittleEndian.AppendUint64(payload, uint64(len(s.offsets)))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(s.size))
	for _, off := range s.offsets {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(off))
	}
	frame := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)

	// The log must be durable up to everything the index claims before the
	// index is installed: an index pointing past the persisted log would
	// survive a power loss that the frames it indexes did not.
	if err := s.log.Sync(); err != nil {
		return fmt.Errorf("blockstore: syncing log before index: %w", err)
	}
	s.fsyncs++
	tmp := filepath.Join(s.dir, idxFileName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("blockstore: creating index temp: %w", err)
	}
	_, err = f.Write(frame)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("blockstore: writing index: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, idxFileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("blockstore: installing index: %w", err)
	}
	return nil
}

// loadIndex seeds s.offsets from the sidecar when it is intact and
// consistent with the log, returning the offset scanning should resume
// from. Any inconsistency — missing file, bad CRC, offsets past the log's
// end, a last frame that no longer verifies — discards the index and
// returns 0 (full scan): the log is always the authority.
func (s *Store) loadIndex() int64 {
	data, err := os.ReadFile(filepath.Join(s.dir, idxFileName))
	if err != nil || len(data) < frameHeaderLen {
		return 0
	}
	length := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	if int64(length) != int64(len(data)-frameHeaderLen) {
		return 0
	}
	payload := data[frameHeaderLen:]
	if crc32.Checksum(payload, crcTable) != sum || len(payload) < 1+16 || payload[0] != recordVersion {
		return 0
	}
	count := binary.LittleEndian.Uint64(payload[1:9])
	end := int64(binary.LittleEndian.Uint64(payload[9:17]))
	if uint64(len(payload)-17) != count*8 {
		return 0
	}
	info, err := s.log.Stat()
	if err != nil || end > info.Size() {
		return 0
	}
	offsets := make([]int64, count)
	prev := int64(-1)
	for i := range offsets {
		off := int64(binary.LittleEndian.Uint64(payload[17+8*i:]))
		if off <= prev || off >= end {
			return 0
		}
		offsets[i] = off
		prev = off
	}
	if count > 0 {
		// Trust, but verify the newest indexed frame end to end; earlier
		// frames are CRC-checked on every read anyway.
		b, frameEnd, err := s.readBlockAt(offsets[count-1])
		if err != nil || b.Header.Number != count-1 || frameEnd != end {
			return 0
		}
	}
	s.offsets = offsets
	return end
}
