package txgraph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/rwset"
)

// tx builds a transaction reading and writing the given keys.
func tx(reads, writes []string) *ledger.Transaction {
	var rw rwset.ReadWriteSet
	for _, k := range reads {
		rw.Reads = append(rw.Reads, rwset.Read{Key: k})
	}
	for _, k := range writes {
		rw.Writes = append(rw.Writes, rwset.Write{Key: k, Value: []byte("v")})
	}
	return &ledger.Transaction{RWSet: rw}
}

// crdtTx builds a transaction with CRDT-flagged writes to the given keys.
func crdtTx(keys ...string) *ledger.Transaction {
	var rw rwset.ReadWriteSet
	for _, k := range keys {
		rw.Writes = append(rw.Writes, rwset.Write{Key: k, Value: []byte("{}"), IsCRDT: true})
	}
	return &ledger.Transaction{RWSet: rw}
}

func TestAllIndependentIsOneWave(t *testing.T) {
	var txs []*ledger.Transaction
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		txs = append(txs, tx([]string{k}, []string{k}))
	}
	plan := Build(txs, nil, true)
	if len(plan.MVCCWaves) != 1 {
		t.Fatalf("waves = %v, want one wave", plan.MVCCWaves)
	}
	if got := plan.MVCCWaves[0]; !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("wave 0 = %v", got)
	}
	st := plan.Stats
	if st.Groups != 8 || st.Conflicted != 0 || st.Edges != 0 || st.LongestChain != 1 {
		t.Fatalf("stats = %+v, want 8 singleton groups", st)
	}
	if st.ConflictRate() != 0 {
		t.Fatalf("conflict rate = %v, want 0", st.ConflictRate())
	}
}

func TestAllConflictingDegeneratesToSerial(t *testing.T) {
	var txs []*ledger.Transaction
	for i := 0; i < 6; i++ {
		txs = append(txs, tx([]string{"hot"}, []string{"hot"}))
	}
	plan := Build(txs, nil, true)
	if len(plan.MVCCWaves) != 6 {
		t.Fatalf("waves = %v, want one tx per wave", plan.MVCCWaves)
	}
	for i, wave := range plan.MVCCWaves {
		if !reflect.DeepEqual(wave, []int{i}) {
			t.Fatalf("wave %d = %v, want [%d]", i, wave, i)
		}
	}
	st := plan.Stats
	if st.Groups != 1 || st.Conflicted != 6 || st.LongestChain != 6 {
		t.Fatalf("stats = %+v, want one 6-deep chain", st)
	}
	if st.ConflictRate() != 1 {
		t.Fatalf("conflict rate = %v, want 1", st.ConflictRate())
	}
}

func TestReadOnlyTransactionsAreIndependent(t *testing.T) {
	// Three readers of one key with no writer: read-read sharing is not a
	// conflict.
	txs := []*ledger.Transaction{
		tx([]string{"shared"}, nil),
		tx([]string{"shared"}, nil),
		tx([]string{"shared"}, nil),
	}
	plan := Build(txs, nil, true)
	if len(plan.MVCCWaves) != 1 || len(plan.MVCCWaves[0]) != 3 {
		t.Fatalf("waves = %v, want all three in one wave", plan.MVCCWaves)
	}
	if plan.Stats.Conflicted != 0 {
		t.Fatalf("stats = %+v, want no conflicts", plan.Stats)
	}
}

func TestReadersOrderAroundWriter(t *testing.T) {
	// writer(0) → reader(1), reader(2) → writer(3): the readers depend on
	// the first writer (write-read) and the second writer depends on the
	// readers (read-write), giving three waves.
	txs := []*ledger.Transaction{
		tx(nil, []string{"k"}),
		tx([]string{"k"}, nil),
		tx([]string{"k"}, nil),
		tx(nil, []string{"k"}),
	}
	plan := Build(txs, nil, true)
	want := [][]int{{0}, {1, 2}, {3}}
	if !reflect.DeepEqual(plan.MVCCWaves, want) {
		t.Fatalf("waves = %v, want %v", plan.MVCCWaves, want)
	}
}

func TestDecidedTransactionsExcluded(t *testing.T) {
	txs := []*ledger.Transaction{
		tx(nil, []string{"k"}),
		tx(nil, []string{"k"}), // pre-decided: not scheduled
		tx(nil, []string{"k"}),
	}
	codes := []ledger.ValidationCode{0, ledger.CodeDuplicate, 0}
	plan := Build(txs, codes, true)
	want := [][]int{{0}, {2}}
	if !reflect.DeepEqual(plan.MVCCWaves, want) {
		t.Fatalf("waves = %v, want %v", plan.MVCCWaves, want)
	}
	if plan.Stats.Scheduled != 2 {
		t.Fatalf("scheduled = %d, want 2", plan.Stats.Scheduled)
	}
}

func TestCRDTCandidatesLeaveTheMVCCSchedule(t *testing.T) {
	txs := []*ledger.Transaction{
		crdtTx("doc"),                    // merge path
		crdtTx("doc"),                    // merge path: same document chain
		tx([]string{"k"}, []string{"k"}), // MVCC path
	}
	plan := Build(txs, nil, true)
	if !reflect.DeepEqual(plan.CRDTTxs, []int{0, 1}) {
		t.Fatalf("CRDT candidates = %v, want [0 1]", plan.CRDTTxs)
	}
	if !reflect.DeepEqual(plan.MVCCWaves, [][]int{{2}}) {
		t.Fatalf("waves = %v, want [[2]]", plan.MVCCWaves)
	}
	// The unified stats still see the document chain as one conflicted
	// group.
	st := plan.Stats
	if st.Groups != 2 || st.Conflicted != 2 || st.LongestChain != 2 {
		t.Fatalf("stats = %+v, want the doc chain + the plain singleton", st)
	}

	// With CRDT disabled the same block schedules everything through MVCC.
	plan = Build(txs, nil, false)
	if len(plan.CRDTTxs) != 0 {
		t.Fatalf("CRDT candidates = %v, want none with CRDT disabled", plan.CRDTTxs)
	}
	if !reflect.DeepEqual(plan.MVCCWaves, [][]int{{0, 2}, {1}}) {
		t.Fatalf("waves = %v", plan.MVCCWaves)
	}
}

// TestWavesRespectEveryDependency cross-checks randomized graphs: every
// conflicting pair must land in distinct waves with the earlier transaction
// first, and every wave must be internally conflict-free.
func TestWavesRespectEveryDependency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		var txs []*ledger.Transaction
		n := 2 + rng.Intn(40)
		for i := 0; i < n; i++ {
			var reads, writes []string
			for k := 0; k < 1+rng.Intn(3); k++ {
				key := fmt.Sprintf("k%d", rng.Intn(8))
				if rng.Intn(2) == 0 {
					reads = append(reads, key)
				} else {
					writes = append(writes, key)
				}
			}
			txs = append(txs, tx(reads, writes))
		}
		plan := Build(txs, nil, true)
		waveOf := make(map[int]int)
		scheduled := 0
		for w, wave := range plan.MVCCWaves {
			for _, i := range wave {
				waveOf[i] = w
				scheduled++
			}
		}
		if scheduled != n {
			t.Fatalf("round %d: scheduled %d of %d txs", round, scheduled, n)
		}
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				if conflictPair(txs[i], txs[j]) && waveOf[i] >= waveOf[j] {
					t.Fatalf("round %d: tx %d (wave %d) conflicts with earlier tx %d (wave %d)",
						round, j, waveOf[j], i, waveOf[i])
				}
			}
		}
	}
}

// conflictPair is the O(n²) reference definition of a conflict.
func conflictPair(a, b *ledger.Transaction) bool {
	writes := func(t *ledger.Transaction) map[string]bool {
		m := make(map[string]bool)
		for _, w := range t.RWSet.Writes {
			m[w.Key] = true
		}
		return m
	}
	reads := func(t *ledger.Transaction) map[string]bool {
		m := make(map[string]bool)
		for _, r := range t.RWSet.Reads {
			m[r.Key] = true
		}
		return m
	}
	aw, bw := writes(a), writes(b)
	ar, br := reads(a), reads(b)
	for k := range aw {
		if bw[k] || br[k] {
			return true
		}
	}
	for k := range ar {
		if bw[k] {
			return true
		}
	}
	return false
}
