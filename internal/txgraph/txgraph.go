// Package txgraph computes the per-block transaction dependency schedule
// behind the parallel finalize stage (DESIGN.md §9). Transactions touching
// disjoint key sets cannot influence each other's MVCC outcome, so they may
// validate concurrently; transactions sharing a key with at least one
// writer form an ordered chain that must be decided in block-delivery
// order. The package builds that conflict graph from the transactions'
// read/write sets and derives a topological wavefront schedule: every wave
// is a set of mutually independent transactions, and replaying the waves in
// order — applying each wave's pending writes before the next starts —
// reproduces the serial validation trajectory exactly, at any worker count.
//
// CRDT-flagged transactions never take the MVCC path (the merge engine
// decides them; paper §5.1), so they are excluded from the MVCC wavefronts
// and surfaced separately as the merge-path candidates. They still
// participate in the unified conflict statistics: CRDT writes to one
// document are a dependency chain too — merges into one JSON CRDT document
// must happen in delivery order for the operation IDs to be deterministic —
// the engine just schedules those chains itself (one goroutine per
// key-group, block order within the group).
package txgraph

import (
	"fabriccrdt/internal/ledger"
)

// Plan is one block's dependency schedule.
type Plan struct {
	// MVCCWaves is the wavefront schedule of the plain (MVCC-validated)
	// transactions: each wave lists transaction indices, ascending; every
	// member's dependencies are in strictly earlier waves, and no two
	// members of one wave conflict. Validating a wave concurrently and
	// then applying its valid members' writes in index order yields the
	// exact serial outcome.
	MVCCWaves [][]int
	// CRDTTxs lists (ascending) the transactions routed to the merge
	// engine instead: undecided transactions carrying CRDT writes.
	CRDTTxs []int
	// Stats summarizes the unified conflict graph (plain and CRDT
	// transactions together).
	Stats Stats
}

// Stats describes one block's conflict structure, feeding the scheduler
// counters (group count, conflict rate) the committer reports.
type Stats struct {
	// Scheduled is the number of transactions in the graph — every
	// transaction still undecided when the schedule was built.
	Scheduled int
	// CRDTTxs of those went to the merge path.
	CRDTTxs int
	// Edges is the number of distinct dependency edges.
	Edges int
	// Groups is the number of connected components: independent groups
	// that could in principle commit fully in parallel.
	Groups int
	// Waves is the length of the MVCC wavefront schedule.
	Waves int
	// LongestChain is the longest dependency chain in the unified graph
	// (1 = no conflicts at all); it bounds the schedule's critical path.
	LongestChain int
	// Conflicted is the number of scheduled transactions with at least
	// one dependency edge (in either direction).
	Conflicted int
}

// ConflictRate is the fraction of scheduled transactions that conflict
// with at least one other transaction in the block.
func (s Stats) ConflictRate() float64 {
	if s.Scheduled == 0 {
		return 0
	}
	return float64(s.Conflicted) / float64(s.Scheduled)
}

// Build constructs the dependency schedule for one block's still-undecided
// transactions (codes[i] == CodeNotValidated; a nil codes means all are
// undecided). crdtEnabled mirrors the committer's merge switch: with it
// off, CRDT-flagged writes are ordinary writes and every transaction takes
// the MVCC path.
//
// Two transactions conflict when they share a key and at least one of them
// writes it: write-write (a later reader must see the last writer's
// version), write-read and read-write (validation outcome of one depends on
// whether the other's writes are applied yet). Read-read sharing is not a
// conflict. Edges always point from the earlier transaction to the later
// one, so the graph is acyclic by construction and block-delivery order is
// preserved within every chain.
func Build(txs []*ledger.Transaction, codes []ledger.ValidationCode, crdtEnabled bool) *Plan {
	plan := &Plan{}
	var eligible []int
	isCRDT := make([]bool, len(txs))
	for i, tx := range txs {
		if codes != nil && codes[i] != ledger.CodeNotValidated {
			continue
		}
		eligible = append(eligible, i)
		if crdtEnabled && tx.RWSet.HasCRDTWrites() {
			isCRDT[i] = true
			plan.CRDTTxs = append(plan.CRDTTxs, i)
		}
	}

	// Unified graph over every eligible transaction: statistics only.
	uf := newUnionFind(len(txs))
	level := make(map[int]int)
	conflicted := make(map[int]bool)
	longest := 0
	edges := 0
	forEachDep(txs, eligible, func(j int, deps map[int]struct{}) {
		//lint:sorted commutative stats only: counts, running max, union-find component count
		for i := range deps {
			edges++
			conflicted[i], conflicted[j] = true, true
			uf.union(i, j)
			if l := level[i] + 1; l > level[j] {
				level[j] = l
			}
		}
		if level[j]+1 > longest {
			longest = level[j] + 1
		}
	})
	groups := make(map[int]struct{})
	for _, i := range eligible {
		groups[uf.find(i)] = struct{}{}
	}
	plan.Stats = Stats{
		Scheduled:    len(eligible),
		CRDTTxs:      len(plan.CRDTTxs),
		Edges:        edges,
		Groups:       len(groups),
		LongestChain: longest,
		Conflicted:   len(conflicted),
	}

	// Execution wavefronts over the plain subgraph only: the merge engine
	// schedules the CRDT chains itself (per-key groups in block order), and
	// in the serial pipeline the merge decides every CRDT candidate before
	// MVCC validation runs — the two families share no MVCC-visible state,
	// so their subgraphs schedule independently.
	var plain []int
	for _, i := range eligible {
		if !isCRDT[i] {
			plain = append(plain, i)
		}
	}
	var waves [][]int
	waveOf := make(map[int]int)
	forEachDep(txs, plain, func(j int, deps map[int]struct{}) {
		wave := 0
		//lint:sorted running max over dep waves; iteration order cannot change it
		for i := range deps {
			if w := waveOf[i] + 1; w > wave {
				wave = w
			}
		}
		waveOf[j] = wave
		for len(waves) <= wave {
			waves = append(waves, nil)
		}
		// Iteration is ascending, so waves stay index-sorted.
		waves[wave] = append(waves[wave], j)
	})
	plan.MVCCWaves = waves
	plan.Stats.Waves = len(waves)
	return plan
}

// forEachDep walks the given transactions in block order and hands each one
// the set of earlier transactions it conflicts with. The sweep keeps, per
// key, the last writer and every reader since that write: a write depends
// on the previous writer and all intervening readers; a read depends on the
// last writer. This visits each true edge exactly once without the O(n²)
// pairwise scan.
func forEachDep(txs []*ledger.Transaction, order []int, fn func(j int, deps map[int]struct{})) {
	lastWriter := make(map[string]int)
	readers := make(map[string][]int)
	deps := make(map[int]struct{})
	for _, j := range order {
		clear(deps)
		rw := txs[j].RWSet
		for _, r := range rw.Reads {
			if w, ok := lastWriter[r.Key]; ok {
				deps[w] = struct{}{}
			}
		}
		for _, w := range rw.Writes {
			if prev, ok := lastWriter[w.Key]; ok {
				deps[prev] = struct{}{}
			}
			for _, r := range readers[w.Key] {
				if r != j {
					deps[r] = struct{}{}
				}
			}
		}
		delete(deps, j) // a transaction never depends on itself
		fn(j, deps)
		for _, r := range rw.Reads {
			readers[r.Key] = append(readers[r.Key], j)
		}
		for _, w := range rw.Writes {
			lastWriter[w.Key] = j
			readers[w.Key] = nil
		}
	}
}

// unionFind is a plain disjoint-set forest over transaction indices.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(i int) int {
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]]
		i = u.parent[i]
	}
	return i
}

func (u *unionFind) union(i, j int) {
	ri, rj := u.find(i), u.find(j)
	if ri != rj {
		u.parent[ri] = rj
	}
}
