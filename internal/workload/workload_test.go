package workload

import (
	"encoding/json"
	"reflect"
	"testing"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/statedb"
)

func TestDefaults(t *testing.T) {
	g := NewIoT(IoTParams{})
	p := g.Params()
	if p.ReadKeys != 1 || p.WriteKeys != 1 || p.JSONKeys != 2 || p.NestingDepth != 1 {
		t.Fatalf("defaults = %+v", p)
	}
}

func TestSpecDeterministic(t *testing.T) {
	g1 := NewIoT(IoTParams{ConflictPct: 50, Seed: 7})
	g2 := NewIoT(IoTParams{ConflictPct: 50, Seed: 7})
	for i := 0; i < 200; i++ {
		if !reflect.DeepEqual(g1.Spec(i), g2.Spec(i)) {
			t.Fatalf("spec %d not deterministic", i)
		}
	}
}

func TestConflictPctExtremes(t *testing.T) {
	all := NewIoT(IoTParams{ConflictPct: 100})
	none := NewIoT(IoTParams{ConflictPct: 0})
	for i := 0; i < 50; i++ {
		if !all.Conflicting(i) {
			t.Fatalf("tx %d not conflicting at 100%%", i)
		}
		if none.Conflicting(i) {
			t.Fatalf("tx %d conflicting at 0%%", i)
		}
	}
}

func TestConflictPctApproximatesTarget(t *testing.T) {
	g := NewIoT(IoTParams{ConflictPct: 40, Seed: 3})
	n, conflicting := 10000, 0
	for i := 0; i < n; i++ {
		if g.Conflicting(i) {
			conflicting++
		}
	}
	got := float64(conflicting) / float64(n) * 100
	if got < 35 || got > 45 {
		t.Fatalf("conflicting fraction = %.1f%%, want ~40%%", got)
	}
}

func TestConflictingTxsShareKeys(t *testing.T) {
	g := NewIoT(IoTParams{ReadKeys: 3, WriteKeys: 2, ConflictPct: 100})
	s1, s2 := g.Spec(1), g.Spec(99)
	if !reflect.DeepEqual(s1.ReadKeys, s2.ReadKeys) {
		t.Fatalf("hot read keys differ: %v vs %v", s1.ReadKeys, s2.ReadKeys)
	}
	if s1.Writes[0].Key != s2.Writes[0].Key {
		t.Fatal("hot write keys differ")
	}
	if len(s1.ReadKeys) != 3 || len(s1.Writes) != 2 {
		t.Fatalf("key counts: %d reads, %d writes", len(s1.ReadKeys), len(s1.Writes))
	}
}

func TestNonConflictingTxsHaveUniqueKeys(t *testing.T) {
	g := NewIoT(IoTParams{ConflictPct: 0})
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		for _, w := range g.Spec(i).Writes {
			if seen[w.Key] {
				t.Fatalf("key %s reused", w.Key)
			}
			seen[w.Key] = true
		}
	}
}

func TestHotKeysCoverReadsAndWrites(t *testing.T) {
	g := NewIoT(IoTParams{ReadKeys: 5, WriteKeys: 3, ConflictPct: 100})
	if n := len(g.HotKeys()); n != 5 {
		t.Fatalf("hot keys = %d, want max(5,3)", n)
	}
}

func TestDeltaListing3Shape(t *testing.T) {
	g := NewIoT(IoTParams{JSONKeys: 2})
	var obj map[string]any
	if err := json.Unmarshal(g.Delta(7), &obj); err != nil {
		t.Fatal(err)
	}
	if len(obj) != 2 {
		t.Fatalf("delta keys = %d, want 2", len(obj))
	}
	if _, ok := obj["deviceID"].(string); !ok {
		t.Fatalf("deviceID missing: %v", obj)
	}
	readings, ok := obj["temperatureReadings1"].([]any)
	if !ok || len(readings) != 1 {
		t.Fatalf("readings = %v", obj["temperatureReadings1"])
	}
}

func TestDeltaComplexityShape(t *testing.T) {
	g := NewIoT(IoTParams{JSONKeys: 3, NestingDepth: 3})
	var obj map[string]any
	if err := json.Unmarshal(g.Delta(1), &obj); err != nil {
		t.Fatal(err)
	}
	if len(obj) != 3 {
		t.Fatalf("keys = %d, want 3", len(obj))
	}
	// Depth check: room -> list -> map -> list -> map -> value.
	depth := 0
	var v any = obj["temperatureRoom1"]
	for {
		list, ok := v.([]any)
		if !ok {
			break
		}
		depth++
		m := list[0].(map[string]any)
		for _, inner := range m {
			v = inner
		}
	}
	if depth != 3 {
		t.Fatalf("nesting depth = %d, want 3", depth)
	}
}

func TestChaincodeProducesCRDTWrites(t *testing.T) {
	g := NewIoT(IoTParams{ReadKeys: 2, WriteKeys: 2, ConflictPct: 100})
	db := statedb.New()
	stub := chaincode.NewSimStub("tx", SpecArgs(5), db)
	if err := g.Chaincode().Invoke(stub); err != nil {
		t.Fatal(err)
	}
	rw := stub.Result()
	if len(rw.Reads) != 2 {
		t.Fatalf("reads = %d", len(rw.Reads))
	}
	if len(rw.Writes) != 2 {
		t.Fatalf("writes = %d", len(rw.Writes))
	}
	for _, w := range rw.Writes {
		if !w.IsCRDT {
			t.Fatalf("write %s not CRDT-flagged", w.Key)
		}
		var obj map[string]any
		if err := json.Unmarshal(w.Value, &obj); err != nil {
			t.Fatalf("delta not valid JSON: %v", err)
		}
	}
}

func TestChaincodeBadArgs(t *testing.T) {
	g := NewIoT(IoTParams{})
	db := statedb.New()
	for _, args := range [][][]byte{
		nil,
		{[]byte("record")},
		{[]byte("record"), []byte("not-a-number")},
		{[]byte("record"), []byte("1"), []byte("extra")},
	} {
		stub := chaincode.NewSimStub("tx", args, db)
		if err := g.Chaincode().Invoke(stub); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestInitialValueIsValidJSON(t *testing.T) {
	var obj map[string]any
	if err := json.Unmarshal(InitialValue(), &obj); err != nil {
		t.Fatal(err)
	}
}

func TestChannelMix(t *testing.T) {
	// No mix configured: the channel stays empty (caller's bound channel).
	g := NewIoT(IoTParams{})
	if got := g.Spec(7).Channel; got != "" {
		t.Fatalf("Channel without mix = %q, want empty", got)
	}
	// A mix spreads transactions round-robin, deterministically.
	g = NewIoT(IoTParams{Channels: []string{"ch1", "ch2", "ch3"}})
	counts := make(map[string]int)
	for i := 0; i < 30; i++ {
		spec := g.Spec(i)
		if spec.Channel != g.ChannelFor(i) {
			t.Fatalf("Spec(%d).Channel = %q, ChannelFor = %q", i, spec.Channel, g.ChannelFor(i))
		}
		if again := g.Spec(i).Channel; again != spec.Channel {
			t.Fatalf("channel assignment not deterministic at %d", i)
		}
		counts[spec.Channel]++
	}
	for _, ch := range []string{"ch1", "ch2", "ch3"} {
		if counts[ch] != 10 {
			t.Fatalf("channel mix unbalanced: %v", counts)
		}
	}
}
