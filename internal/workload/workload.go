// Package workload generates the paper's evaluation workload (§7.1): an IoT
// chaincode storing temperature readings as JSON CRDT documents, with every
// experiment knob from the paper's configuration tables — read/write key
// counts (Table 2), JSON object complexity as keys × nesting depth
// (Table 3, Listing 4), and the percentage of conflicting transactions
// (Table 5). It stands in for the Hyperledger Caliper benchmark driver.
package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"

	"fabriccrdt/internal/chaincode"
)

// IoTParams configures the generator. Zero fields take paper defaults.
type IoTParams struct {
	// ReadKeys is the number of keys each transaction reads (paper: 1).
	ReadKeys int
	// WriteKeys is the number of keys each transaction writes (paper: 1).
	WriteKeys int
	// JSONKeys is the number of keys per JSON object (paper: 2 — a device
	// ID plus one reading list).
	JSONKeys int
	// NestingDepth is the depth of each key's value from the object root
	// (paper Figure 5 sweeps 2…6; Listing 4 shows "3-3").
	NestingDepth int
	// ConflictPct is the percentage (0–100) of transactions that target
	// the shared hot key set; the rest touch per-transaction unique keys.
	ConflictPct int
	// Channels is the channel mix: transactions are assigned round-robin
	// over this list (Spec(i).Channel), sharding an experiment's load over
	// a multi-channel network. Empty means "single channel" — Channel
	// stays "" and the caller's bound channel applies. Keys are
	// channel-local state, so the hot-key set exists independently per
	// channel and transactions only ever conflict within their channel.
	Channels []string
	// Seed makes the conflict assignment deterministic.
	Seed int64
}

// withDefaults fills the paper's fixed configuration.
func (p IoTParams) withDefaults() IoTParams {
	if p.ReadKeys <= 0 {
		p.ReadKeys = 1
	}
	if p.WriteKeys <= 0 {
		p.WriteKeys = 1
	}
	if p.JSONKeys <= 0 {
		p.JSONKeys = 2
	}
	if p.NestingDepth <= 0 {
		p.NestingDepth = 1
	}
	if p.ConflictPct < 0 {
		p.ConflictPct = 0
	}
	if p.ConflictPct > 100 {
		p.ConflictPct = 100
	}
	return p
}

// Write is one staged CRDT write.
type Write struct {
	Key   string
	Delta []byte
}

// TxSpec is the materialized plan of one transaction.
type TxSpec struct {
	Seq         int
	Conflicting bool
	// Channel is the channel this transaction submits on ("" when the
	// generator has no channel mix configured).
	Channel  string
	ReadKeys []string
	Writes   []Write
}

// IoTGenerator deterministically derives transaction specs from indexes.
type IoTGenerator struct {
	params IoTParams
}

// NewIoT returns a generator for the given parameters.
func NewIoT(params IoTParams) *IoTGenerator {
	return &IoTGenerator{params: params.withDefaults()}
}

// Params returns the effective (defaulted) parameters.
func (g *IoTGenerator) Params() IoTParams { return g.params }

// hotKey returns the j-th shared key all conflicting transactions touch.
func hotKey(j int) string { return fmt.Sprintf("device-hot-%d", j) }

// coldKey returns the j-th key unique to transaction i.
func coldKey(i, j int) string { return fmt.Sprintf("device-%d-%d", i, j) }

// HotKeys returns the shared key set (pre-populated before an experiment,
// paper §7.2: "we start with an empty ledger and populate the ledger with
// keys that are read during the experiment").
func (g *IoTGenerator) HotKeys() []string {
	n := g.params.ReadKeys
	if g.params.WriteKeys > n {
		n = g.params.WriteKeys
	}
	keys := make([]string, n)
	for j := range keys {
		keys[j] = hotKey(j)
	}
	return keys
}

// ChannelFor returns the channel transaction i submits on: round-robin
// over the configured channel mix, or "" when none is configured. The
// assignment is a pure function of (params, i) like the rest of the spec,
// so simulation runs stay reproducible.
func (g *IoTGenerator) ChannelFor(i int) string {
	if len(g.params.Channels) == 0 {
		return ""
	}
	return g.params.Channels[i%len(g.params.Channels)]
}

// Conflicting reports whether transaction i targets the hot keys.
func (g *IoTGenerator) Conflicting(i int) bool {
	switch g.params.ConflictPct {
	case 0:
		return false
	case 100:
		return true
	}
	rng := rand.New(rand.NewSource(g.params.Seed + int64(i)*2654435761))
	return rng.Intn(100) < g.params.ConflictPct
}

// Spec derives transaction i's plan. The same (params, i) always yields the
// same spec, which is what makes simulation runs reproducible.
func (g *IoTGenerator) Spec(i int) TxSpec {
	spec := TxSpec{Seq: i, Conflicting: g.Conflicting(i), Channel: g.ChannelFor(i)}
	key := func(j int) string {
		if spec.Conflicting {
			return hotKey(j)
		}
		return coldKey(i, j)
	}
	spec.ReadKeys = make([]string, g.params.ReadKeys)
	for j := range spec.ReadKeys {
		spec.ReadKeys[j] = key(j)
	}
	spec.Writes = make([]Write, g.params.WriteKeys)
	delta := g.Delta(i)
	for j := range spec.Writes {
		spec.Writes[j] = Write{Key: key(j), Delta: delta}
	}
	return spec
}

// Delta builds transaction i's JSON object: JSONKeys-1 reading lists of the
// configured nesting depth plus a device ID key (matching the paper's
// 2-key default of Listing 3), or, when sweeping complexity, JSONKeys
// reading lists (Listing 4's "k-d" objects).
func (g *IoTGenerator) Delta(i int) []byte {
	obj := make(map[string]any, g.params.JSONKeys)
	reading := strconv.Itoa(10 + i%30)
	if g.params.NestingDepth <= 1 {
		// Paper Listing 3 shape: deviceID + flat reading lists.
		obj["deviceID"] = fmt.Sprintf("dev-%08x", i)
		for k := 1; k < g.params.JSONKeys; k++ {
			obj[fmt.Sprintf("temperatureReadings%d", k)] = []any{
				map[string]any{"temperature": reading},
			}
		}
	} else {
		// Paper Listing 4 shape: JSONKeys keys, each nested to depth.
		for k := 0; k < g.params.JSONKeys; k++ {
			obj[fmt.Sprintf("temperatureRoom%d", k+1)] = nest(g.params.NestingDepth, reading)
		}
	}
	data, err := json.Marshal(obj)
	if err != nil {
		panic("workload: marshaling delta: " + err.Error()) // unreachable: map of scalars
	}
	return data
}

// nest builds a list-of-map chain of the given depth ending in a reading,
// mirroring Listing 4 ("temperatureReading" lists down to a value).
func nest(depth int, reading string) any {
	if depth <= 1 {
		return []any{map[string]any{"temperatureValue": reading}}
	}
	return []any{map[string]any{fmt.Sprintf("reading%d", depth): nest(depth-1, reading)}}
}

// SpecArgs encodes a spec index as chaincode invocation arguments.
func SpecArgs(i int) [][]byte {
	return [][]byte{[]byte("record"), []byte(strconv.Itoa(i))}
}

// Chaincode returns the IoT chaincode: invoked with SpecArgs(i), it reads
// the spec's keys and stages its CRDT writes — the paper's "chaincode that
// receives and stores temperature readings and device identification
// numbers of IoT devices".
func (g *IoTGenerator) Chaincode() chaincode.Chaincode {
	return chaincode.Func(func(stub chaincode.Stub) error {
		_, params := stub.Function()
		if len(params) != 1 {
			return fmt.Errorf("workload: want 1 argument (spec index), got %d", len(params))
		}
		i, err := strconv.Atoi(params[0])
		if err != nil {
			return fmt.Errorf("workload: bad spec index %q: %w", params[0], err)
		}
		spec := g.Spec(i)
		for _, k := range spec.ReadKeys {
			if _, err := stub.GetState(k); err != nil {
				return err
			}
		}
		for _, w := range spec.Writes {
			if err := stub.PutCRDT(w.Key, w.Delta); err != nil {
				return err
			}
		}
		return nil
	})
}

// InitialValue is the JSON document hot keys are populated with before an
// experiment begins.
func InitialValue() []byte {
	return []byte(`{"deviceID":"seed","temperatureReadings1":[]}`)
}
