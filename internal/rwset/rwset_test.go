package rwset

import (
	"testing"
	"testing/quick"
)

func TestBuilderFirstReadWins(t *testing.T) {
	b := NewBuilder()
	b.AddRead("k", Version{BlockNum: 1, TxNum: 2})
	b.AddRead("k", Version{BlockNum: 9, TxNum: 9})
	rw := b.Build()
	if len(rw.Reads) != 1 {
		t.Fatalf("reads = %d, want 1", len(rw.Reads))
	}
	if rw.Reads[0].Version != (Version{BlockNum: 1, TxNum: 2}) {
		t.Fatalf("read version = %v, want first", rw.Reads[0].Version)
	}
}

func TestBuilderLastWriteWins(t *testing.T) {
	b := NewBuilder()
	b.AddWrite(Write{Key: "k", Value: []byte("v1")})
	b.AddWrite(Write{Key: "other", Value: []byte("x")})
	b.AddWrite(Write{Key: "k", Value: []byte("v2"), IsCRDT: true})
	rw := b.Build()
	if len(rw.Writes) != 2 {
		t.Fatalf("writes = %d, want 2", len(rw.Writes))
	}
	// Position preserved (k first), value updated.
	if rw.Writes[0].Key != "k" || string(rw.Writes[0].Value) != "v2" || !rw.Writes[0].IsCRDT {
		t.Fatalf("writes[0] = %+v", rw.Writes[0])
	}
}

func TestBuilderPendingWrite(t *testing.T) {
	b := NewBuilder()
	if _, ok := b.PendingWrite("k"); ok {
		t.Fatal("no pending write expected")
	}
	b.AddWrite(Write{Key: "k", Value: []byte("v")})
	w, ok := b.PendingWrite("k")
	if !ok || string(w.Value) != "v" {
		t.Fatalf("pending = %+v, %v", w, ok)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.AddRead("a", Version{BlockNum: 3, TxNum: 1})
	b.AddWrite(Write{Key: "b", Value: []byte(`{"x":1}`), IsCRDT: true})
	b.AddWrite(Write{Key: "c", IsDelete: true})
	rw := b.Build()
	data, err := rw.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !rw.Equal(back) {
		t.Fatalf("round trip: %+v vs %+v", rw, back)
	}
}

func TestUnmarshalError(t *testing.T) {
	if _, err := Unmarshal([]byte("{bad")); err == nil {
		t.Fatal("want error")
	}
}

func TestHashDiffersOnChange(t *testing.T) {
	b1 := NewBuilder()
	b1.AddWrite(Write{Key: "k", Value: []byte("v1")})
	b2 := NewBuilder()
	b2.AddWrite(Write{Key: "k", Value: []byte("v2")})
	h1, err := b1.Build().Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := b2.Build().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("hashes must differ for different write values")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	base := func() ReadWriteSet {
		b := NewBuilder()
		b.AddRead("r", Version{BlockNum: 1})
		b.AddWrite(Write{Key: "w", Value: []byte("v")})
		return b.Build()
	}
	rw := base()
	if !rw.Equal(base()) {
		t.Fatal("identical sets must be equal")
	}
	variants := []ReadWriteSet{
		{Reads: rw.Reads},   // missing writes
		{Writes: rw.Writes}, // missing reads
		{Reads: []Read{{Key: "r", Version: Version{BlockNum: 2}}}, Writes: rw.Writes}, // version differs
		{Reads: rw.Reads, Writes: []Write{{Key: "w", Value: []byte("v"), IsCRDT: true}}},
		{Reads: rw.Reads, Writes: []Write{{Key: "w", Value: []byte("v"), IsDelete: true}}},
	}
	for i, v := range variants {
		if rw.Equal(v) {
			t.Errorf("variant %d compared equal", i)
		}
	}
}

func TestHasCRDTWrites(t *testing.T) {
	if (ReadWriteSet{Writes: []Write{{Key: "k"}}}).HasCRDTWrites() {
		t.Fatal("no CRDT writes expected")
	}
	if !(ReadWriteSet{Writes: []Write{{Key: "k"}, {Key: "c", IsCRDT: true}}}).HasCRDTWrites() {
		t.Fatal("CRDT write not detected")
	}
}

func TestVersionString(t *testing.T) {
	v := Version{BlockNum: 4, TxNum: 7}
	if v.String() != "4:7" {
		t.Fatalf("String = %q", v.String())
	}
	if !(Version{}).IsZero() || v.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

// Property: marshal/unmarshal round trip preserves equality.
func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(keys []string, block, tx uint64, crdt bool) bool {
		b := NewBuilder()
		for _, k := range keys {
			b.AddRead(k, Version{BlockNum: block, TxNum: tx})
			b.AddWrite(Write{Key: k, Value: []byte(k), IsCRDT: crdt})
		}
		rw := b.Build()
		data, err := rw.Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return rw.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
