// Package rwset implements Fabric's transaction read/write sets and value
// versions (paper §3): the read set records each key read during chaincode
// simulation together with the version of the value read; the write set
// records the key/value pairs to commit. FabricCRDT extends writes with a
// CRDT flag so that the committer can route them through the merge engine
// instead of MVCC validation.
package rwset

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

// Version identifies the transaction that last committed a key: the block
// number and the transaction's position within it. The zero Version means
// "key does not exist".
type Version struct {
	BlockNum uint64 `json:"block"`
	TxNum    uint64 `json:"tx"`
}

// IsZero reports whether v is the "absent key" version.
func (v Version) IsZero() bool { return v == Version{} }

// String renders the version as "block:tx".
func (v Version) String() string { return fmt.Sprintf("%d:%d", v.BlockNum, v.TxNum) }

// Read is one read-set entry.
type Read struct {
	Key     string  `json:"key"`
	Version Version `json:"version"`
}

// Write is one write-set entry.
type Write struct {
	Key      string `json:"key"`
	Value    []byte `json:"value,omitempty"`
	IsDelete bool   `json:"isDelete,omitempty"`
	// IsCRDT marks the value as a CRDT-encapsulated write (FabricCRDT §5.1:
	// "peers flag the key-value pairs in the resulting transaction's
	// write-set as CRDT key-values"). CRDT writes skip MVCC validation and
	// are merged at commit time.
	IsCRDT bool `json:"isCRDT,omitempty"`
	// CRDTType selects the merge procedure for a CRDT write: empty means
	// the JSON CRDT (the paper's prototype), any other value names a
	// datatype in the classic-CRDT registry (the paper's future-work
	// extension: counters, sets, registers, graphs).
	CRDTType string `json:"crdtType,omitempty"`
}

// ReadWriteSet is the outcome of simulating one transaction proposal.
type ReadWriteSet struct {
	Reads  []Read  `json:"reads,omitempty"`
	Writes []Write `json:"writes,omitempty"`
}

// HasCRDTWrites reports whether any write is CRDT-flagged.
func (rw ReadWriteSet) HasCRDTWrites() bool {
	for _, w := range rw.Writes {
		if w.IsCRDT {
			return true
		}
	}
	return false
}

// Marshal serializes the set deterministically (entries keep simulation
// order, which the builder makes canonical).
func (rw ReadWriteSet) Marshal() ([]byte, error) {
	return json.Marshal(rw)
}

// Unmarshal parses Marshal output.
func Unmarshal(data []byte) (ReadWriteSet, error) {
	var rw ReadWriteSet
	if err := json.Unmarshal(data, &rw); err != nil {
		return ReadWriteSet{}, fmt.Errorf("rwset: decoding: %w", err)
	}
	return rw, nil
}

// Hash returns the SHA-256 digest of the serialized set. Clients compare
// hashes across endorsements to detect non-deterministic chaincode.
func (rw ReadWriteSet) Hash() ([32]byte, error) {
	data, err := rw.Marshal()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(data), nil
}

// Equal reports deep equality of two sets.
func (rw ReadWriteSet) Equal(other ReadWriteSet) bool {
	if len(rw.Reads) != len(other.Reads) || len(rw.Writes) != len(other.Writes) {
		return false
	}
	for i, r := range rw.Reads {
		if r != other.Reads[i] {
			return false
		}
	}
	for i, w := range rw.Writes {
		ow := other.Writes[i]
		if w.Key != ow.Key || w.IsDelete != ow.IsDelete || w.IsCRDT != ow.IsCRDT ||
			w.CRDTType != ow.CRDTType || !bytes.Equal(w.Value, ow.Value) {
			return false
		}
	}
	return true
}

// Builder accumulates reads and writes during chaincode simulation with
// Fabric's canonicalization: the first read of a key wins (later reads see
// the same committed snapshot), the last write of a key wins, and entries
// are emitted in first-touch order.
type Builder struct {
	readOrder  []string
	reads      map[string]Read
	writeOrder []string
	writes     map[string]Write
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		reads:  make(map[string]Read),
		writes: make(map[string]Write),
	}
}

// AddRead records a read of key at version; only the first read of a key is
// kept.
func (b *Builder) AddRead(key string, version Version) {
	if _, ok := b.reads[key]; ok {
		return
	}
	b.reads[key] = Read{Key: key, Version: version}
	b.readOrder = append(b.readOrder, key)
}

// AddWrite records a write; the last write of a key wins but keeps the
// key's original position.
func (b *Builder) AddWrite(w Write) {
	if _, ok := b.writes[w.Key]; !ok {
		b.writeOrder = append(b.writeOrder, w.Key)
	}
	b.writes[w.Key] = w
}

// PendingWrite returns the not-yet-built write for key, supporting
// read-your-own-writes during simulation.
func (b *Builder) PendingWrite(key string) (Write, bool) {
	w, ok := b.writes[key]
	return w, ok
}

// Build returns the canonical read/write set.
func (b *Builder) Build() ReadWriteSet {
	rw := ReadWriteSet{}
	if len(b.readOrder) > 0 {
		rw.Reads = make([]Read, 0, len(b.readOrder))
		for _, k := range b.readOrder {
			rw.Reads = append(rw.Reads, b.reads[k])
		}
	}
	if len(b.writeOrder) > 0 {
		rw.Writes = make([]Write, 0, len(b.writeOrder))
		for _, k := range b.writeOrder {
			rw.Writes = append(rw.Writes, b.writes[k])
		}
	}
	return rw
}
