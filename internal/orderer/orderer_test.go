package orderer

import (
	"testing"
	"testing/quick"
	"time"

	"fabriccrdt/internal/ledger"
)

func smallTx(id string) *ledger.Transaction {
	return &ledger.Transaction{ID: id, ChannelID: "ch1", Chaincode: "cc"}
}

func TestCutterCutsAtMaxMessages(t *testing.T) {
	c := NewCutter(Config{MaxMessageCount: 3, BatchTimeout: time.Hour})
	var cut []Batch
	for i := 0; i < 7; i++ {
		batches, err := c.Ordered(smallTx("t" + string(rune('0'+i))))
		if err != nil {
			t.Fatal(err)
		}
		cut = append(cut, batches...)
	}
	if len(cut) != 2 {
		t.Fatalf("cut %d batches, want 2", len(cut))
	}
	for _, b := range cut {
		if len(b.Transactions) != 3 || b.Reason != CutMaxMessages {
			t.Fatalf("batch = %d txs, reason %s", len(b.Transactions), b.Reason)
		}
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
}

func TestCutterTimeoutCut(t *testing.T) {
	c := NewCutter(Config{MaxMessageCount: 100})
	if _, err := c.Ordered(smallTx("a")); err != nil {
		t.Fatal(err)
	}
	b := c.Cut(CutTimeout)
	if len(b.Transactions) != 1 || b.Reason != CutTimeout {
		t.Fatalf("batch = %+v", b)
	}
	if c.Pending() != 0 {
		t.Fatal("pending not cleared")
	}
	empty := c.Cut(CutTimeout)
	if len(empty.Transactions) != 0 {
		t.Fatal("cut of empty cutter returned transactions")
	}
}

func TestCutterPreferredBytes(t *testing.T) {
	// Transactions of ~N bytes; preferred limit forces cuts before count.
	tx := smallTx("x")
	size := tx.Size()
	c := NewCutter(Config{MaxMessageCount: 1000, PreferredMaxBytes: size*2 + 1, AbsoluteMaxBytes: size * 100})
	var batches []Batch
	for i := 0; i < 5; i++ {
		got, err := c.Ordered(smallTx("x"))
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, got...)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2 (cut every 2 txs by bytes)", len(batches))
	}
	for _, b := range batches {
		if b.Reason != CutPreferredBytes {
			t.Fatalf("reason = %s", b.Reason)
		}
	}
}

func TestCutterOversizedTxGetsOwnBlock(t *testing.T) {
	small := smallTx("s")
	big := smallTx("big")
	big.Args = [][]byte{make([]byte, 4096)}
	c := NewCutter(Config{MaxMessageCount: 1000, PreferredMaxBytes: 1024, AbsoluteMaxBytes: 1 << 20})
	if _, err := c.Ordered(small); err != nil {
		t.Fatal(err)
	}
	batches, err := c.Ordered(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2 (flush + own block)", len(batches))
	}
	if batches[0].Reason != CutPreferredBytes || len(batches[0].Transactions) != 1 {
		t.Fatalf("first batch = %+v", batches[0])
	}
	if batches[1].Reason != CutOversizedTx || batches[1].Transactions[0].ID != "big" {
		t.Fatalf("second batch = %+v", batches[1])
	}
}

func TestCutterRejectsAbsoluteOversize(t *testing.T) {
	big := smallTx("big")
	big.Args = [][]byte{make([]byte, 4096)}
	c := NewCutter(Config{MaxMessageCount: 10, AbsoluteMaxBytes: 100, PreferredMaxBytes: 50})
	if _, err := c.Ordered(big); err == nil {
		t.Fatal("oversized tx accepted")
	}
}

// Property: the cutter never loses, duplicates or reorders transactions and
// never exceeds MaxMessageCount.
func TestCutterConservationProperty(t *testing.T) {
	f := func(nTx uint8, maxCount uint8) bool {
		n := int(nTx)%200 + 1
		mc := int(maxCount)%50 + 1
		c := NewCutter(Config{MaxMessageCount: mc, BatchTimeout: time.Hour})
		var out []*ledger.Transaction
		for i := 0; i < n; i++ {
			batches, err := c.Ordered(smallTx(itoa(i)))
			if err != nil {
				return false
			}
			for _, b := range batches {
				if len(b.Transactions) > mc {
					return false
				}
				out = append(out, b.Transactions...)
			}
		}
		final := c.Cut(CutFlush)
		out = append(out, final.Transactions...)
		if len(out) != n {
			return false
		}
		for i, tx := range out {
			if tx.ID != itoa(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestAssemblerChainsBlocks(t *testing.T) {
	chain := ledger.NewChain("ch1")
	a := NewAssembler(chain.Last())
	for i := 0; i < 3; i++ {
		block, err := a.Assemble(Batch{
			Transactions: []*ledger.Transaction{smallTx("t" + itoa(i))},
			Reason:       CutMaxMessages,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := chain.Append(block); err != nil {
			t.Fatalf("append block %d: %v", i, err)
		}
		if block.Metadata.CutReason != string(CutMaxMessages) {
			t.Fatalf("cut reason = %q", block.Metadata.CutReason)
		}
	}
	if err := chain.Verify(); err != nil {
		t.Fatalf("chain verify: %v", err)
	}
}

func TestServiceCutsBySize(t *testing.T) {
	genesis := ledger.NewChain("ch1").Last()
	s := NewService(Config{MaxMessageCount: 2, BatchTimeout: time.Hour}, genesis)
	deliver := s.Subscribe()
	for i := 0; i < 4; i++ {
		if err := s.Broadcast(smallTx("t" + itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	b1 := <-deliver
	b2 := <-deliver
	if len(b1.Transactions) != 2 || len(b2.Transactions) != 2 {
		t.Fatalf("block sizes %d, %d", len(b1.Transactions), len(b2.Transactions))
	}
	if b1.Header.Number != 1 || b2.Header.Number != 2 {
		t.Fatalf("block numbers %d, %d", b1.Header.Number, b2.Header.Number)
	}
	s.Stop()
}

func TestServiceTimeoutCut(t *testing.T) {
	genesis := ledger.NewChain("ch1").Last()
	s := NewService(Config{MaxMessageCount: 100, BatchTimeout: 30 * time.Millisecond}, genesis)
	deliver := s.Subscribe()
	if err := s.Broadcast(smallTx("only")); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-deliver:
		if len(b.Transactions) != 1 || b.Metadata.CutReason != string(CutTimeout) {
			t.Fatalf("block = %d txs, reason %q", len(b.Transactions), b.Metadata.CutReason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout block never delivered")
	}
	s.Stop()
}

func TestServiceStopFlushesAndCloses(t *testing.T) {
	genesis := ledger.NewChain("ch1").Last()
	s := NewService(Config{MaxMessageCount: 100, BatchTimeout: time.Hour}, genesis)
	deliver := s.Subscribe()
	if err := s.Broadcast(smallTx("pending")); err != nil {
		t.Fatal(err)
	}
	go s.Stop()
	b, ok := <-deliver
	if !ok || len(b.Transactions) != 1 {
		t.Fatalf("flush block = %+v, ok=%v", b, ok)
	}
	if _, ok := <-deliver; ok {
		t.Fatal("deliver channel not closed after stop")
	}
	if err := s.Broadcast(smallTx("late")); err == nil {
		t.Fatal("broadcast after stop accepted")
	}
}

// within fails the test if fn does not return in the given time — the
// shape of every fan-out regression below: the old implementation
// deadlocked (fan-out sent into bounded subscriber channels while holding
// the service mutex), so "returns at all" is the property under test.
func within(t *testing.T, d time.Duration, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s did not return within %v (fan-out wedged)", what, d)
	}
}

// TestBroadcastSurvivesStuckSubscriber is the deadlock regression: a
// subscriber that never reads must not wedge Broadcast or Flush, and a
// healthy subscriber on the same service must keep receiving every block
// in order. The 200 single-transaction blocks far exceed the old 64-slot
// subscriber buffer that used to fill and block emit under the mutex.
func TestBroadcastSurvivesStuckSubscriber(t *testing.T) {
	genesis := ledger.NewChain("ch1").Last()
	s := NewService(Config{MaxMessageCount: 1, BatchTimeout: time.Hour}, genesis)
	_ = s.Subscribe() // never read
	healthy := s.Subscribe()

	const blocks = 200
	received := make(chan []*ledger.Block, 1)
	go func() {
		var got []*ledger.Block
		for b := range healthy {
			got = append(got, b)
		}
		received <- got
	}()
	within(t, 10*time.Second, "Broadcast x200", func() {
		for i := 0; i < blocks; i++ {
			if err := s.Broadcast(smallTx("t" + itoa(i))); err != nil {
				t.Errorf("broadcast %d: %v", i, err)
				return
			}
		}
	})
	within(t, 5*time.Second, "Flush", s.Flush)
	within(t, 5*time.Second, "Stop", s.Stop)

	got := <-received
	if len(got) != blocks {
		t.Fatalf("healthy subscriber received %d blocks, want %d", len(got), blocks)
	}
	for i, b := range got {
		if b.Header.Number != uint64(i+1) || len(b.Transactions) != 1 || b.Transactions[0].ID != "t"+itoa(i) {
			t.Fatalf("block %d out of order: number %d, tx %q", i, b.Header.Number, b.Transactions[0].ID)
		}
	}
}

// TestStopWithNeverReadingSubscriber: Stop used to flush pending
// transactions into the subscriber's full buffer while holding the mutex,
// blocking forever. It must now return; shutdown delivery to the dead
// subscriber is best-effort.
func TestStopWithNeverReadingSubscriber(t *testing.T) {
	genesis := ledger.NewChain("ch1").Last()
	s := NewService(Config{MaxMessageCount: 1, BatchTimeout: time.Hour}, genesis)
	_ = s.Subscribe() // never read
	within(t, 10*time.Second, "Broadcast x100", func() {
		for i := 0; i < 100; i++ {
			if err := s.Broadcast(smallTx("t" + itoa(i))); err != nil {
				t.Errorf("broadcast %d: %v", i, err)
				return
			}
		}
	})
	// One transaction left pending so Stop's flush path also runs.
	if err := s.Broadcast(smallTx("pending")); err != nil {
		t.Fatal(err)
	}
	within(t, 5*time.Second, "Stop", s.Stop)
	if err := s.Broadcast(smallTx("late")); err == nil {
		t.Fatal("broadcast after stop accepted")
	}
}

// TestSlowSubscriberStillGetsEverything: a subscriber that lags (reads
// with a delay after many blocks are queued) receives the full ordered
// stream and a clean close — lag queues blocks, it never drops them.
func TestSlowSubscriberStillGetsEverything(t *testing.T) {
	genesis := ledger.NewChain("ch1").Last()
	s := NewService(Config{MaxMessageCount: 1, BatchTimeout: time.Hour}, genesis)
	slow := s.Subscribe()
	const blocks = 150
	for i := 0; i < blocks; i++ {
		if err := s.Broadcast(smallTx("t" + itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	go s.Stop()
	var got int
	for b := range slow {
		if b.Header.Number != uint64(got+1) {
			t.Fatalf("block %d delivered as number %d", got, b.Header.Number)
		}
		got++
		if got%50 == 0 {
			time.Sleep(10 * time.Millisecond) // fall behind on purpose
		}
	}
	if got != blocks {
		t.Fatalf("slow subscriber received %d blocks, want %d", got, blocks)
	}
}

// TestSubscribeAfterStopReturnsClosedChannel: a late subscriber must see
// an immediately closed stream, not a channel that never closes (and no
// forwarder goroutine parked forever behind it).
func TestSubscribeAfterStopReturnsClosedChannel(t *testing.T) {
	genesis := ledger.NewChain("ch1").Last()
	s := NewService(Config{MaxMessageCount: 1, BatchTimeout: time.Hour}, genesis)
	s.Stop()
	select {
	case _, ok := <-s.Subscribe():
		if ok {
			t.Fatal("subscribe after stop delivered a block")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscribe after stop returned a channel that never closes")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(25)
	if cfg.MaxMessageCount != 25 || cfg.BatchTimeout != 2*time.Second {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.AbsoluteMaxBytes != 128*1024*1024 {
		t.Fatalf("abs bytes = %d", cfg.AbsoluteMaxBytes)
	}
}
