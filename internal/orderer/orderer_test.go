package orderer

import (
	"testing"
	"testing/quick"
	"time"

	"fabriccrdt/internal/ledger"
)

func smallTx(id string) *ledger.Transaction {
	return &ledger.Transaction{ID: id, ChannelID: "ch1", Chaincode: "cc"}
}

func TestCutterCutsAtMaxMessages(t *testing.T) {
	c := NewCutter(Config{MaxMessageCount: 3, BatchTimeout: time.Hour})
	var cut []Batch
	for i := 0; i < 7; i++ {
		batches, err := c.Ordered(smallTx("t" + string(rune('0'+i))))
		if err != nil {
			t.Fatal(err)
		}
		cut = append(cut, batches...)
	}
	if len(cut) != 2 {
		t.Fatalf("cut %d batches, want 2", len(cut))
	}
	for _, b := range cut {
		if len(b.Transactions) != 3 || b.Reason != CutMaxMessages {
			t.Fatalf("batch = %d txs, reason %s", len(b.Transactions), b.Reason)
		}
	}
	if c.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", c.Pending())
	}
}

func TestCutterTimeoutCut(t *testing.T) {
	c := NewCutter(Config{MaxMessageCount: 100})
	if _, err := c.Ordered(smallTx("a")); err != nil {
		t.Fatal(err)
	}
	b := c.Cut(CutTimeout)
	if len(b.Transactions) != 1 || b.Reason != CutTimeout {
		t.Fatalf("batch = %+v", b)
	}
	if c.Pending() != 0 {
		t.Fatal("pending not cleared")
	}
	empty := c.Cut(CutTimeout)
	if len(empty.Transactions) != 0 {
		t.Fatal("cut of empty cutter returned transactions")
	}
}

func TestCutterPreferredBytes(t *testing.T) {
	// Transactions of ~N bytes; preferred limit forces cuts before count.
	tx := smallTx("x")
	size := tx.Size()
	c := NewCutter(Config{MaxMessageCount: 1000, PreferredMaxBytes: size*2 + 1, AbsoluteMaxBytes: size * 100})
	var batches []Batch
	for i := 0; i < 5; i++ {
		got, err := c.Ordered(smallTx("x"))
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, got...)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2 (cut every 2 txs by bytes)", len(batches))
	}
	for _, b := range batches {
		if b.Reason != CutPreferredBytes {
			t.Fatalf("reason = %s", b.Reason)
		}
	}
}

func TestCutterOversizedTxGetsOwnBlock(t *testing.T) {
	small := smallTx("s")
	big := smallTx("big")
	big.Args = [][]byte{make([]byte, 4096)}
	c := NewCutter(Config{MaxMessageCount: 1000, PreferredMaxBytes: 1024, AbsoluteMaxBytes: 1 << 20})
	if _, err := c.Ordered(small); err != nil {
		t.Fatal(err)
	}
	batches, err := c.Ordered(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2 (flush + own block)", len(batches))
	}
	if batches[0].Reason != CutPreferredBytes || len(batches[0].Transactions) != 1 {
		t.Fatalf("first batch = %+v", batches[0])
	}
	if batches[1].Reason != CutOversizedTx || batches[1].Transactions[0].ID != "big" {
		t.Fatalf("second batch = %+v", batches[1])
	}
}

func TestCutterRejectsAbsoluteOversize(t *testing.T) {
	big := smallTx("big")
	big.Args = [][]byte{make([]byte, 4096)}
	c := NewCutter(Config{MaxMessageCount: 10, AbsoluteMaxBytes: 100, PreferredMaxBytes: 50})
	if _, err := c.Ordered(big); err == nil {
		t.Fatal("oversized tx accepted")
	}
}

// Property: the cutter never loses, duplicates or reorders transactions and
// never exceeds MaxMessageCount.
func TestCutterConservationProperty(t *testing.T) {
	f := func(nTx uint8, maxCount uint8) bool {
		n := int(nTx)%200 + 1
		mc := int(maxCount)%50 + 1
		c := NewCutter(Config{MaxMessageCount: mc, BatchTimeout: time.Hour})
		var out []*ledger.Transaction
		for i := 0; i < n; i++ {
			batches, err := c.Ordered(smallTx(itoa(i)))
			if err != nil {
				return false
			}
			for _, b := range batches {
				if len(b.Transactions) > mc {
					return false
				}
				out = append(out, b.Transactions...)
			}
		}
		final := c.Cut(CutFlush)
		out = append(out, final.Transactions...)
		if len(out) != n {
			return false
		}
		for i, tx := range out {
			if tx.ID != itoa(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestAssemblerChainsBlocks(t *testing.T) {
	chain := ledger.NewChain("ch1")
	a := NewAssembler(chain.Last())
	for i := 0; i < 3; i++ {
		block, err := a.Assemble(Batch{
			Transactions: []*ledger.Transaction{smallTx("t" + itoa(i))},
			Reason:       CutMaxMessages,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := chain.Append(block); err != nil {
			t.Fatalf("append block %d: %v", i, err)
		}
		if block.Metadata.CutReason != string(CutMaxMessages) {
			t.Fatalf("cut reason = %q", block.Metadata.CutReason)
		}
	}
	if err := chain.Verify(); err != nil {
		t.Fatalf("chain verify: %v", err)
	}
}

func TestServiceCutsBySize(t *testing.T) {
	genesis := ledger.NewChain("ch1").Last()
	s := NewService(Config{MaxMessageCount: 2, BatchTimeout: time.Hour}, genesis)
	deliver := s.Subscribe()
	for i := 0; i < 4; i++ {
		if err := s.Broadcast(smallTx("t" + itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	b1 := <-deliver
	b2 := <-deliver
	if len(b1.Transactions) != 2 || len(b2.Transactions) != 2 {
		t.Fatalf("block sizes %d, %d", len(b1.Transactions), len(b2.Transactions))
	}
	if b1.Header.Number != 1 || b2.Header.Number != 2 {
		t.Fatalf("block numbers %d, %d", b1.Header.Number, b2.Header.Number)
	}
	s.Stop()
}

func TestServiceTimeoutCut(t *testing.T) {
	genesis := ledger.NewChain("ch1").Last()
	s := NewService(Config{MaxMessageCount: 100, BatchTimeout: 30 * time.Millisecond}, genesis)
	deliver := s.Subscribe()
	if err := s.Broadcast(smallTx("only")); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-deliver:
		if len(b.Transactions) != 1 || b.Metadata.CutReason != string(CutTimeout) {
			t.Fatalf("block = %d txs, reason %q", len(b.Transactions), b.Metadata.CutReason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout block never delivered")
	}
	s.Stop()
}

func TestServiceStopFlushesAndCloses(t *testing.T) {
	genesis := ledger.NewChain("ch1").Last()
	s := NewService(Config{MaxMessageCount: 100, BatchTimeout: time.Hour}, genesis)
	deliver := s.Subscribe()
	if err := s.Broadcast(smallTx("pending")); err != nil {
		t.Fatal(err)
	}
	go s.Stop()
	b, ok := <-deliver
	if !ok || len(b.Transactions) != 1 {
		t.Fatalf("flush block = %+v, ok=%v", b, ok)
	}
	if _, ok := <-deliver; ok {
		t.Fatal("deliver channel not closed after stop")
	}
	if err := s.Broadcast(smallTx("late")); err == nil {
		t.Fatal("broadcast after stop accepted")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(25)
	if cfg.MaxMessageCount != 25 || cfg.BatchTimeout != 2*time.Second {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.AbsoluteMaxBytes != 128*1024*1024 {
		t.Fatalf("abs bytes = %d", cfg.AbsoluteMaxBytes)
	}
}
