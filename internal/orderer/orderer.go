// Package orderer implements the ordering service: a total-order broadcast
// (standing in for the paper's Kafka/ZooKeeper deployment) plus Fabric's
// block cutter, which batches the ordered transaction stream into blocks by
// message count, byte size and timeout (paper §3: "the ordering service
// creates a block based on several criteria, including the maximum number
// of transactions, the maximum total size … and a timeout period").
//
// A service normally chains blocks after the channel genesis block
// (NewService); a network resuming from durable peer state instead chains
// after the recorded checkpoint (NewServiceAt), continuing the committed
// block numbering rather than restarting at 1.
package orderer

import (
	"errors"
	"strconv"
	"sync"
	"time"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/obs"
)

// Config mirrors Fabric's BatchSize/BatchTimeout orderer configuration.
type Config struct {
	// MaxMessageCount cuts a block when this many transactions are
	// pending (the paper's block-size sweep varies 25…1000).
	MaxMessageCount int
	// AbsoluteMaxBytes is the hard byte ceiling per block; a transaction
	// larger than it is rejected.
	AbsoluteMaxBytes int
	// PreferredMaxBytes cuts a block early when pending bytes reach it.
	PreferredMaxBytes int
	// BatchTimeout cuts whatever is pending after this long (paper: 2s).
	BatchTimeout time.Duration
}

// DefaultConfig matches the paper's fixed orderer settings (Table 1):
// 128 MB preferred/absolute bytes, 2 s timeout.
func DefaultConfig(maxMessages int) Config {
	return Config{
		MaxMessageCount:   maxMessages,
		AbsoluteMaxBytes:  128 * 1024 * 1024,
		PreferredMaxBytes: 128 * 1024 * 1024,
		BatchTimeout:      2 * time.Second,
	}
}

// normalized fills zero fields with safe defaults.
func (c Config) normalized() Config {
	if c.MaxMessageCount <= 0 {
		c.MaxMessageCount = 500
	}
	if c.AbsoluteMaxBytes <= 0 {
		c.AbsoluteMaxBytes = 128 * 1024 * 1024
	}
	if c.PreferredMaxBytes <= 0 {
		c.PreferredMaxBytes = c.AbsoluteMaxBytes
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = 2 * time.Second
	}
	return c
}

// CutReason records why a batch was cut.
type CutReason string

// Batch cut reasons.
const (
	CutMaxMessages    CutReason = "max-message-count"
	CutPreferredBytes CutReason = "preferred-max-bytes"
	CutOversizedTx    CutReason = "oversized-transaction"
	CutTimeout        CutReason = "batch-timeout"
	CutFlush          CutReason = "flush"
)

// Batch is a cut group of transactions with its cut reason.
type Batch struct {
	Transactions []*ledger.Transaction
	Reason       CutReason
}

// ErrOversized reports a transaction exceeding AbsoluteMaxBytes.
var ErrOversized = errors.New("orderer: transaction exceeds AbsoluteMaxBytes")

// Cutter is the pure block-cutting state machine, shared by the live
// ordering service and the discrete-event simulation. It is not safe for
// concurrent use; callers serialize (that serialization IS the total order).
type Cutter struct {
	cfg          Config
	pending      []*ledger.Transaction
	pendingBytes int
}

// NewCutter returns a cutter with the given configuration.
func NewCutter(cfg Config) *Cutter {
	return &Cutter{cfg: cfg.normalized()}
}

// Pending returns the number of queued transactions.
func (c *Cutter) Pending() int { return len(c.pending) }

// Ordered accepts the next transaction in total order and returns the
// batches it completes (zero, one, or — when an oversized-but-legal
// transaction forces the pending batch out first — two).
func (c *Cutter) Ordered(tx *ledger.Transaction) ([]Batch, error) {
	size := tx.Size()
	if size > c.cfg.AbsoluteMaxBytes {
		return nil, ErrOversized
	}
	var batches []Batch
	// A transaction that alone exceeds PreferredMaxBytes is cut into its
	// own batch, flushing anything pending first (Fabric semantics).
	if size > c.cfg.PreferredMaxBytes {
		if len(c.pending) > 0 {
			batches = append(batches, c.cut(CutPreferredBytes))
		}
		c.pending = append(c.pending, tx)
		c.pendingBytes += size
		batches = append(batches, c.cut(CutOversizedTx))
		return batches, nil
	}
	if c.pendingBytes+size > c.cfg.PreferredMaxBytes && len(c.pending) > 0 {
		batches = append(batches, c.cut(CutPreferredBytes))
	}
	c.pending = append(c.pending, tx)
	c.pendingBytes += size
	if len(c.pending) >= c.cfg.MaxMessageCount {
		batches = append(batches, c.cut(CutMaxMessages))
	}
	return batches, nil
}

// Cut flushes the pending transactions (timeout or shutdown path); it
// returns a zero-length batch when nothing is pending.
func (c *Cutter) Cut(reason CutReason) Batch {
	if len(c.pending) == 0 {
		return Batch{Reason: reason}
	}
	return c.cut(reason)
}

func (c *Cutter) cut(reason CutReason) Batch {
	b := Batch{Transactions: c.pending, Reason: reason}
	c.pending = nil
	c.pendingBytes = 0
	return b
}

// Assembler turns cut batches into hash-chained blocks. It must observe
// batches in total order.
type Assembler struct {
	nextNumber uint64
	prevHash   []byte
}

// NewAssembler returns an assembler chaining onto the given block (usually
// the channel's genesis block).
func NewAssembler(after *ledger.Block) *Assembler {
	return NewAssemblerAt(after.Header.Number, after.HeaderHash())
}

// NewAssemblerAt returns an assembler chaining onto the block identified
// by (number, header hash) — the resume path when the ordering service is
// rebuilt over peers restored from a durable state checkpoint, where the
// block body itself is no longer available.
func NewAssemblerAt(afterNumber uint64, afterHash []byte) *Assembler {
	return &Assembler{
		nextNumber: afterNumber + 1,
		prevHash:   afterHash,
	}
}

// Assemble builds the next block from a batch. When any batched
// transaction carries a trace ID, the block metadata records the full
// per-transaction ID column (empty strings for untraced slots) so the
// trace survives re-serialization on the wire — metadata is not covered
// by the data hash, and the IDs were already inside it anyway via the
// transaction bodies.
func (a *Assembler) Assemble(batch Batch) (*ledger.Block, error) {
	dataHash, err := ledger.ComputeDataHash(batch.Transactions)
	if err != nil {
		return nil, err
	}
	var traceIDs []string
	for i, tx := range batch.Transactions {
		if tx.TraceID == "" {
			continue
		}
		if traceIDs == nil {
			traceIDs = make([]string, len(batch.Transactions))
		}
		traceIDs[i] = tx.TraceID
	}
	b := &ledger.Block{
		Header: ledger.BlockHeader{
			Number:   a.nextNumber,
			PrevHash: a.prevHash,
			DataHash: dataHash,
		},
		Transactions: batch.Transactions,
		Metadata: ledger.BlockMetadata{
			ValidationCodes: make([]ledger.ValidationCode, len(batch.Transactions)),
			CutReason:       string(batch.Reason),
			TraceIDs:        traceIDs,
		},
	}
	a.nextNumber++
	a.prevHash = b.HeaderHash()
	return b, nil
}

// Service is the live (goroutine-driven) ordering service: Broadcast
// serializes submissions into a total order, the cutter batches them, and
// completed blocks fan out to every subscribed deliver channel.
//
// Fan-out never blocks the service: emit appends each block to a
// per-subscriber handoff queue under the service mutex (an append, never a
// channel send), and a forwarder goroutine per subscriber delivers from
// its queue outside the mutex. A stuck, slow or abandoned subscriber
// therefore delays only its own delivery — Broadcast, Flush and Stop stay
// responsive, and other subscribers keep receiving. The cost of that
// guarantee is an unbounded queue per subscriber: a consumer that stops
// draining accrues the blocks it is missing until it resumes or the
// service stops (fabricnet's committers always drain, even after a commit
// error, precisely so those queues stay empty).
type Service struct {
	cfg Config

	mu        sync.Mutex
	cutter    *Cutter
	assembler *Assembler
	subs      []*subscription
	timer     *time.Timer
	stopped   bool
	label     string
	// tracedAt remembers when each traced transaction entered Broadcast so
	// emit can record an orderer.order span spanning queueing + batching.
	// Entries are deleted on emit and swept on Stop; the map only ever
	// holds transactions whose batch has not been cut yet.
	tracedAt map[string]time.Time
}

// subscription is one subscriber's delivery state: the handoff queue emit
// appends to under the service mutex, and the out channel its forwarder
// goroutine feeds from that queue.
type subscription struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*ledger.Block
	closed bool
	out    chan *ledger.Block
}

func newSubscription() *subscription {
	s := &subscription{out: make(chan *ledger.Block, 64)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push appends a block to the handoff queue and returns the resulting
// depth (0 when closed). It never blocks (the queue is a slice), which is
// what keeps the service's emit safe under its mutex.
func (s *subscription) push(b *ledger.Block) int {
	s.mu.Lock()
	depth := 0
	if !s.closed {
		s.queue = append(s.queue, b)
		depth = len(s.queue)
		s.cond.Signal()
	}
	s.mu.Unlock()
	return depth
}

// depth returns the current handoff-queue length.
func (s *subscription) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// close marks the subscription finished: the forwarder delivers what is
// already queued, then closes the out channel. Never blocks.
func (s *subscription) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Signal()
	s.mu.Unlock()
}

// forward runs as the subscription's forwarder goroutine: it moves blocks
// from the queue to the out channel in order, blocking only this
// subscriber when its consumer is slow. After close it drains the
// remaining queue (so Stop's final flush reaches consumers that keep
// reading) and then closes out; a consumer that never reads again parks
// its forwarder on the pending send until process exit — shutdown delivery
// is best-effort, never a deadlock of the service itself.
func (s *subscription) forward() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			close(s.out)
			return
		}
		b := s.queue[0]
		s.queue[0] = nil
		s.queue = s.queue[1:]
		s.mu.Unlock()
		s.out <- b
	}
}

// NewService returns a started ordering service chaining blocks after
// genesis.
func NewService(cfg Config, genesis *ledger.Block) *Service {
	return NewServiceAt(cfg, genesis.Header.Number, genesis.HeaderHash())
}

// NewServiceAt returns a started ordering service chaining blocks after
// the block identified by (number, header hash) — used when a network
// resumes from durable peer state and new blocks must continue the
// recorded chain rather than restart at 1.
func NewServiceAt(cfg Config, afterNumber uint64, afterHash []byte) *Service {
	return &Service{
		cfg:       cfg.normalized(),
		cutter:    NewCutter(cfg),
		assembler: NewAssemblerAt(afterNumber, afterHash),
	}
}

// ErrStopped reports a broadcast to a stopped service.
var ErrStopped = errors.New("orderer: service stopped")

// SetLabel names the service (normally its channel ID) in queue high-water
// warnings and trace spans. Call before serving traffic.
func (s *Service) SetLabel(label string) {
	s.mu.Lock()
	s.label = label
	s.mu.Unlock()
}

// QueueDepth returns the total number of blocks sitting in subscriber
// handoff queues — the service's only unbounded buffers. Intended as a
// scrape-time gauge callback.
func (s *Service) QueueDepth() int {
	s.mu.Lock()
	subs := append([]*subscription(nil), s.subs...)
	s.mu.Unlock()
	total := 0
	for _, sub := range subs {
		total += sub.depth()
	}
	return total
}

// Subscribe registers a deliver channel; all blocks cut after the call are
// sent to it, in order, by a dedicated forwarder goroutine over an
// unbounded handoff queue. A slow subscriber lags behind (its queue grows
// with the blocks it has not consumed) but never applies backpressure to
// the ordering service or to other subscribers. Consumers must drain the
// channel until it is closed — including after deciding to stop
// committing — or they strand their queued blocks.
func (s *Service) Subscribe() <-chan *ledger.Block {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		// No blocks will ever be cut again: yield an already-closed
		// stream instead of one nobody would ever close (Stop has
		// already swept the subscriber list).
		ch := make(chan *ledger.Block)
		close(ch)
		return ch
	}
	sub := newSubscription()
	s.subs = append(s.subs, sub)
	go sub.forward()
	return sub.out
}

// Broadcast submits a transaction for ordering. The mutex acquisition order
// is the total order (the Kafka stand-in).
func (s *Service) Broadcast(tx *ledger.Transaction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped {
		return ErrStopped
	}
	if tx.TraceID != "" && obs.TracingEnabled() {
		if s.tracedAt == nil {
			s.tracedAt = make(map[string]time.Time)
		}
		s.tracedAt[tx.TraceID] = time.Now()
	}
	batches, err := s.cutter.Ordered(tx)
	if err != nil {
		return err
	}
	for _, b := range batches {
		if err := s.emit(b); err != nil {
			return err
		}
	}
	s.armTimerLocked()
	return nil
}

// armTimerLocked starts the batch timeout when transactions are pending and
// no timer runs, and clears it when the cutter is empty.
func (s *Service) armTimerLocked() {
	if s.cutter.Pending() == 0 {
		if s.timer != nil {
			s.timer.Stop()
			s.timer = nil
		}
		return
	}
	if s.timer != nil {
		return
	}
	s.timer = time.AfterFunc(s.cfg.BatchTimeout, s.onTimeout)
}

func (s *Service) onTimeout() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.timer = nil
	if s.stopped || s.cutter.Pending() == 0 {
		return
	}
	batch := s.cutter.Cut(CutTimeout)
	_ = s.emit(batch)
	s.armTimerLocked()
}

// emit assembles a batch and hands the block to every subscriber's queue
// (mu held). The handoff is an append, never a channel send, so emit —
// and every caller holding the service mutex — cannot block on a stuck
// subscriber. (The previous implementation sent into bounded subscriber
// channels right here; one abandoned subscriber filling its buffer then
// wedged Broadcast, Flush and Stop behind the mutex.)
func (s *Service) emit(batch Batch) error {
	if len(batch.Transactions) == 0 {
		return nil
	}
	block, err := s.assembler.Assemble(batch)
	if err != nil {
		return err
	}
	if len(s.tracedAt) > 0 {
		num := strconv.FormatUint(block.Header.Number, 10)
		for _, tx := range block.Transactions {
			start, ok := s.tracedAt[tx.TraceID]
			if !ok {
				continue
			}
			delete(s.tracedAt, tx.TraceID)
			obs.Trace(tx.TraceID, "orderer.order", start,
				"channel", s.label, "txID", tx.ID,
				"block", num, "reason", string(batch.Reason))
		}
	}
	for _, sub := range s.subs {
		obs.WarnQueueDepth("orderer_fanout", s.label, sub.push(block))
	}
	return nil
}

// Flush cuts and delivers any pending transactions immediately.
func (s *Service) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopped || s.cutter.Pending() == 0 {
		return
	}
	_ = s.emit(s.cutter.Cut(CutFlush))
	s.armTimerLocked()
}

// Stop flushes pending transactions, closes all deliver channels and
// rejects further broadcasts. Shutdown delivery is best-effort: queued
// blocks (including the final flush) are delivered to subscribers that
// keep draining, after which their channels close; Stop itself never
// waits on a subscriber, so it returns even when one has stopped reading.
func (s *Service) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	if s.cutter.Pending() > 0 {
		_ = s.emit(s.cutter.Cut(CutFlush))
	}
	s.stopped = true
	s.tracedAt = nil
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	subs := s.subs
	s.subs = nil
	s.mu.Unlock()
	for _, sub := range subs {
		sub.close()
	}
}
