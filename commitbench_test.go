// Commit-pipeline benchmark: one delivered block driven through the staged
// committer at several worker counts, CRDT on and off, measuring the real
// pipeline (ed25519 endorsement checks, merge, MVCC, state apply). Results
// are summarized into BENCH_commit.json for the perf trajectory.
//
// Run: go test -bench=BenchmarkCommitPipeline -benchtime=10x .
package fabriccrdt_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/obs"
	"fabriccrdt/internal/orderer"
	"fabriccrdt/internal/peer"
)

// commitFixture endorses benchmark blocks once; fresh committer peers
// (sharing the CA, MSP, channel list and chaincode) then replay them under
// different pipeline configurations.
type commitFixture struct {
	ca         *cryptoid.CA
	msp        *cryptoid.MSP
	endorser   *peer.Peer
	client     *cryptoid.Signer
	enableCRDT bool
	channels   []string
	policy     *endorse.Policy
	nPeers     int
}

// benchChaincode appends one reading to a device document (PutCRDT); on a
// stock peer the endorser drops the flag and the write validates via MVCC.
func benchChaincode() chaincode.Chaincode {
	return chaincode.Func(func(stub chaincode.Stub) error {
		_, params := stub.Function()
		device, reading := params[0], params[1]
		if _, err := stub.GetState(device); err != nil {
			return err
		}
		return stub.PutCRDT(device, []byte(`{"r":[{"t":"`+reading+`"}]}`))
	})
}

func newCommitFixture(b *testing.B, enableCRDT bool) *commitFixture {
	b.Helper()
	return newCommitFixtureChannels(b, enableCRDT, "bench")
}

// newCommitFixtureChannels is newCommitFixture with peers joining an
// explicit channel list (the multi-channel scaling benchmark).
func newCommitFixtureChannels(b *testing.B, enableCRDT bool, channels ...string) *commitFixture {
	b.Helper()
	ca, err := cryptoid.NewCA("Org1")
	if err != nil {
		b.Fatal(err)
	}
	msp := cryptoid.NewMSP()
	msp.AddOrg("Org1", ca.PublicKey())
	client, err := ca.Issue("bench-client")
	if err != nil {
		b.Fatal(err)
	}
	fix := &commitFixture{
		ca: ca, msp: msp, client: client, enableCRDT: enableCRDT,
		channels: channels,
		policy:   endorse.MustParse("'Org1.member'"),
	}
	fix.endorser = fix.newPeer(b, peer.CommitterConfig{Workers: 1})
	return fix
}

func (f *commitFixture) newPeer(b *testing.B, committer peer.CommitterConfig) *peer.Peer {
	b.Helper()
	f.nPeers++
	name := fmt.Sprintf("Org1.bench%d", f.nPeers)
	signer, err := f.ca.Issue(name)
	if err != nil {
		b.Fatal(err)
	}
	p, err := peer.New(peer.Config{
		Name: name, MSPID: "Org1", Channels: f.channels,
		EnableCRDT: f.enableCRDT, Committer: committer,
	}, signer, f.msp)
	if err != nil {
		b.Fatal(err)
	}
	p.InstallChaincode("bench", benchChaincode(), f.policy)
	return p
}

// endorsedBlock assembles a block of n conflicting transactions spread over
// 4 device keys, endorsed against the (never-committing) endorser's state.
func (f *commitFixture) endorsedBlock(b *testing.B, n int) *ledger.Block {
	b.Helper()
	return f.endorsedBlockOn(b, f.channels[0], n)
}

// endorsedBlockOn is endorsedBlock against an explicit channel; the block
// chains onto that channel's genesis, so it commits on any fresh fixture
// peer.
func (f *commitFixture) endorsedBlockOn(b *testing.B, channelID string, n int) *ledger.Block {
	b.Helper()
	creator, err := f.client.Identity.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	txs := make([]*ledger.Transaction, n)
	for i := range txs {
		txID := fmt.Sprintf("bench-%s-%d", channelID, i)
		args := [][]byte{[]byte("record"), []byte(fmt.Sprintf("dev%d", i%4)), []byte(fmt.Sprintf("%d", i))}
		resp, err := f.endorser.Endorse(peer.Proposal{
			TxID: txID, ChannelID: channelID, Chaincode: "bench", Args: args, Creator: creator,
		})
		if err != nil {
			b.Fatal(err)
		}
		txs[i] = &ledger.Transaction{
			ID: txID, ChannelID: channelID, Chaincode: "bench", Creator: creator, Args: args,
			RWSet:        resp.RWSet,
			Endorsements: []ledger.Endorsement{{Endorser: resp.Endorser, Signature: resp.Signature}},
		}
	}
	chain, err := f.endorser.ChainOn(channelID)
	if err != nil {
		b.Fatal(err)
	}
	assembler := orderer.NewAssembler(chain.Last())
	block, err := assembler.Assemble(orderer.Batch{Transactions: txs, Reason: orderer.CutMaxMessages})
	if err != nil {
		b.Fatal(err)
	}
	return block
}

// commitBenchEntry is one BENCH_commit.json record.
type commitBenchEntry struct {
	CRDT    bool   `json:"crdt"`
	Backend string `json:"backend"`
	// Shards is the sharded backend's shard count (0 for other backends).
	Shards int `json:"shards,omitempty"`
	// PersistBlocks marks disk-backend runs with the durable block store
	// on (one block-body append per commit beside the state log).
	PersistBlocks bool `json:"persist_blocks,omitempty"`
	// CacheBytes is the LSM backend's block-cache budget
	// (BenchmarkCommitLSMCache; 0 = the statedb default, and for every
	// other backend, which has no block cache).
	CacheBytes int64 `json:"cache_bytes,omitempty"`
	// Channels is how many channels committed concurrently (1 for the
	// single-channel pipeline benchmarks). With N > 1, BlockTxs counts one
	// block per channel, NsPerBlock is the wall time for the whole round
	// (one block on every channel in parallel) and TxPerSec is the
	// aggregate across channels.
	Channels int `json:"channels"`
	// Pipeline is the async commit pipeline depth (0 for the synchronous
	// per-block benchmarks). With Pipeline > 0, BlockTxs counts one block
	// and NsPerBlock is wall time per block of the whole pipelined
	// multi-block stream.
	Pipeline int `json:"pipeline,omitempty"`
	BlockTxs int `json:"block_txs"`
	Workers  int `json:"workers"`
	// FinalizeWorkers is the intra-block dependency scheduler's worker
	// count (BenchmarkCommitFinalize; 0 marks entries from before the
	// scheduler existed — the legacy serial finalize).
	FinalizeWorkers int `json:"finalize_workers,omitempty"`
	// ConflictRate is the benchmark block's conflicting-transaction share
	// in percent (BenchmarkCommitFinalize; omitted when zero — the
	// all-independent block).
	ConflictRate int     `json:"conflict_rate,omitempty"`
	NsPerBlock   int64   `json:"ns_per_block"`
	TxPerSec     float64 `json:"tx_per_s"`
	// Registry snapshots: the last measured peer's obs counters at the end
	// of the run — blocks committed, transactions finalized (committed +
	// rejected), the finalize scheduler's observed conflicted-transaction
	// share, and the process-global healed deliver-retry count. Omitted on
	// entries predating the metrics registry.
	ObsBlocks       int64   `json:"obs_blocks,omitempty"`
	ObsTxs          int64   `json:"obs_txs,omitempty"`
	ObsConflictRate float64 `json:"obs_conflict_rate,omitempty"`
	ObsRetries      int64   `json:"obs_retries,omitempty"`
}

// obsSnapshot copies the peer's registry counters into the entry. The
// registry outlives Close, so benchmarks that close their peers per
// iteration still snapshot the last one. Not part of benchKey — snapshots
// are payload, not configuration identity.
func (e commitBenchEntry) obsSnapshot(p *peer.Peer) commitBenchEntry {
	reg := p.Metrics()
	if v, ok := reg.Total(obs.MetricPeerBlocksCommitted); ok {
		e.ObsBlocks = int64(v)
	}
	if v, ok := reg.Total(obs.MetricPeerTxsCommitted); ok {
		e.ObsTxs = int64(v)
	}
	if conflicted, ok := reg.Total(obs.MetricSchedConflicted); ok {
		if txs, ok := reg.Total(obs.MetricSchedTxs); ok && txs > 0 {
			e.ObsConflictRate = conflicted / txs
		}
	}
	if v, ok := obs.Default().Total(obs.MetricDeliverRetries); ok {
		e.ObsRetries = int64(v)
	}
	return e
}

var (
	commitBenchMu      sync.Mutex
	commitBenchResults = make(map[string]commitBenchEntry)
)

// benchKey is one configuration's identity in BENCH_commit.json.
func benchKey(e commitBenchEntry) string {
	return fmt.Sprintf("%v/%s/%d/%v/%d/%d/%d/%d/%d/%d/%d", e.CRDT, e.Backend, e.Shards, e.PersistBlocks, e.CacheBytes, e.Channels, e.Pipeline, e.BlockTxs, e.Workers, e.FinalizeWorkers, e.ConflictRate)
}

// loadCommitBench seeds the in-memory result map from the committed
// BENCH_commit.json, so running a SUBSET of the benchmarks updates those
// configurations in place instead of silently deleting every other
// dimension's entries from the file.
func loadCommitBench() {
	data, err := os.ReadFile("BENCH_commit.json")
	if err != nil {
		return // no prior results
	}
	var entries []commitBenchEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return // unreadable: the rewrite will replace it
	}
	for _, e := range entries {
		if e.Channels == 0 {
			e.Channels = 1
		}
		commitBenchResults[benchKey(e)] = e
	}
}

// recordCommitBench keeps the latest measurement per configuration and
// rewrites BENCH_commit.json, preserving entries of configurations this
// run did not measure (benchmarks re-run sub-benchmarks with growing N;
// last = most accurate).
func recordCommitBench(b *testing.B, e commitBenchEntry) {
	b.Helper()
	commitBenchMu.Lock()
	defer commitBenchMu.Unlock()
	if len(commitBenchResults) == 0 {
		loadCommitBench()
	}
	if e.Channels == 0 {
		e.Channels = 1
	}
	commitBenchResults[benchKey(e)] = e
	entries := make([]commitBenchEntry, 0, len(commitBenchResults))
	for _, v := range commitBenchResults {
		entries = append(entries, v)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, c := entries[i], entries[j]
		if a.CRDT != c.CRDT {
			return a.CRDT
		}
		if a.Backend != c.Backend {
			return a.Backend < c.Backend
		}
		if a.Shards != c.Shards {
			return a.Shards < c.Shards
		}
		if a.PersistBlocks != c.PersistBlocks {
			return !a.PersistBlocks
		}
		if a.CacheBytes != c.CacheBytes {
			return a.CacheBytes < c.CacheBytes
		}
		if a.Channels != c.Channels {
			return a.Channels < c.Channels
		}
		if a.Pipeline != c.Pipeline {
			return a.Pipeline < c.Pipeline
		}
		if a.BlockTxs != c.BlockTxs {
			return a.BlockTxs < c.BlockTxs
		}
		if a.Workers != c.Workers {
			return a.Workers < c.Workers
		}
		if a.ConflictRate != c.ConflictRate {
			return a.ConflictRate < c.ConflictRate
		}
		return a.FinalizeWorkers < c.FinalizeWorkers
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_commit.json", data, 0o644); err != nil {
		b.Logf("writing BENCH_commit.json: %v", err)
	}
}

// BenchmarkCommitPipeline measures CommitBlock wall time per configuration.
// Peer construction (key issuance, chaincode install) happens off the clock;
// only the staged pipeline is timed.
func BenchmarkCommitPipeline(b *testing.B) {
	for _, enableCRDT := range []bool{true, false} {
		mode := "FabricCRDT"
		if !enableCRDT {
			mode = "Fabric"
		}
		for _, blockTxs := range []int{25, 100} {
			fix := newCommitFixture(b, enableCRDT)
			block := fix.endorsedBlock(b, blockTxs)
			for _, workers := range []int{1, 4, 8} {
				name := fmt.Sprintf("%s/txs=%d/workers=%d", mode, blockTxs, workers)
				b.Run(name, func(b *testing.B) {
					cfg := peer.CommitterConfig{Workers: workers, StateShards: workers}
					var total time.Duration
					var lastPeer *peer.Peer
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						p := fix.newPeer(b, cfg)
						lastPeer = p
						b.StartTimer()
						start := time.Now()
						res, err := p.CommitBlock(block)
						if err != nil {
							b.Fatal(err)
						}
						total += time.Since(start)
						if enableCRDT && res.CommittedTx != blockTxs {
							b.Fatalf("committed %d/%d", res.CommittedTx, blockTxs)
						}
					}
					nsPerBlock := total.Nanoseconds() / int64(b.N)
					txPerSec := float64(blockTxs) / (float64(nsPerBlock) / 1e9)
					b.ReportMetric(txPerSec, "tx/s")
					for _, s := range lastPeer.CommitTimings() {
						b.ReportMetric(float64(s.Avg.Nanoseconds()), s.Stage+"_ns")
					}
					backendName, shards := peer.BackendMemory, 0
					if workers > 1 {
						backendName, shards = peer.BackendSharded, workers // legacy auto-selection
					}
					recordCommitBench(b, commitBenchEntry{
						CRDT: enableCRDT, Backend: backendName, Shards: shards, BlockTxs: blockTxs, Workers: workers,
						NsPerBlock: nsPerBlock, TxPerSec: txPerSec,
					}.obsSnapshot(lastPeer))
				})
			}
		}
	}
}

// BenchmarkCommitBackends measures the same staged pipeline with each
// state backend behind it — the cost of durability (disk, lsm), the
// payoff of shard-level locking vs the single-lock map, and the block
// store's append overhead (persistblocks: disk with block-body
// persistence, the durable backends' default configuration). CRDT on,
// 100-transaction blocks, 4 workers; one fresh peer (and, for the durable
// backends, a fresh data directory) per iteration so the logs start empty
// every time. The lsm entry here is the in-memtable baseline (one block
// never triggers a flush); BenchmarkCommitLSMCache covers datasets that
// spill to sorted runs and stress the block cache.
func BenchmarkCommitBackends(b *testing.B) {
	const blockTxs, workers = 100, 4
	fix := newCommitFixture(b, true)
	block := fix.endorsedBlock(b, blockTxs)
	backends := []struct {
		label         string
		backend       string
		shards        int
		persistBlocks bool
		cfg           func(b *testing.B) peer.CommitterConfig
	}{
		{peer.BackendMemory, peer.BackendMemory, 0, false, func(b *testing.B) peer.CommitterConfig {
			return peer.CommitterConfig{Workers: workers, Backend: peer.BackendMemory}
		}},
		{peer.BackendSharded, peer.BackendSharded, 8, false, func(b *testing.B) peer.CommitterConfig {
			return peer.CommitterConfig{Workers: workers, Backend: peer.BackendSharded, StateShards: 8}
		}},
		{peer.BackendDisk, peer.BackendDisk, 0, false, func(b *testing.B) peer.CommitterConfig {
			return peer.CommitterConfig{Workers: workers, Backend: peer.BackendDisk, DataDir: b.TempDir(),
				PersistBlocks: peer.PersistBlocksOff}
		}},
		{"persistblocks", peer.BackendDisk, 0, true, func(b *testing.B) peer.CommitterConfig {
			return peer.CommitterConfig{Workers: workers, Backend: peer.BackendDisk, DataDir: b.TempDir(),
				PersistBlocks: peer.PersistBlocksOn}
		}},
		{peer.BackendLSM, peer.BackendLSM, 0, false, func(b *testing.B) peer.CommitterConfig {
			return peer.CommitterConfig{Workers: workers, Backend: peer.BackendLSM, DataDir: b.TempDir(),
				PersistBlocks: peer.PersistBlocksOff}
		}},
	}
	for _, backend := range backends {
		b.Run(fmt.Sprintf("backend=%s", backend.label), func(b *testing.B) {
			var total time.Duration
			var lastPeer *peer.Peer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := fix.newPeer(b, backend.cfg(b))
				lastPeer = p
				b.StartTimer()
				start := time.Now()
				res, err := p.CommitBlock(block)
				if err != nil {
					b.Fatal(err)
				}
				total += time.Since(start)
				b.StopTimer()
				if err := p.Close(); err != nil {
					b.Fatal(err)
				}
				if res.CommittedTx != blockTxs {
					b.Fatalf("committed %d/%d", res.CommittedTx, blockTxs)
				}
				b.StartTimer()
			}
			nsPerBlock := total.Nanoseconds() / int64(b.N)
			txPerSec := float64(blockTxs) / (float64(nsPerBlock) / 1e9)
			b.ReportMetric(txPerSec, "tx/s")
			recordCommitBench(b, commitBenchEntry{
				CRDT: true, Backend: backend.backend, Shards: backend.shards,
				PersistBlocks: backend.persistBlocks, BlockTxs: blockTxs, Workers: workers,
				NsPerBlock: nsPerBlock, TxPerSec: txPerSec,
			}.obsSnapshot(lastPeer))
		})
	}
}

// endorsedStream assembles nBlocks hash-chained blocks of txsPerBlock
// conflicting transactions each (unique IDs across the stream), endorsed
// against the never-committing endorser — a deliver stream replayable on
// any fresh fixture peer.
func (f *commitFixture) endorsedStream(b *testing.B, nBlocks, txsPerBlock int) []*ledger.Block {
	b.Helper()
	creator, err := f.client.Identity.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	channelID := f.channels[0]
	chain, err := f.endorser.ChainOn(channelID)
	if err != nil {
		b.Fatal(err)
	}
	assembler := orderer.NewAssembler(chain.Last())
	blocks := make([]*ledger.Block, 0, nBlocks)
	for blk := 0; blk < nBlocks; blk++ {
		txs := make([]*ledger.Transaction, txsPerBlock)
		for i := range txs {
			txID := fmt.Sprintf("stream-%d-%d", blk, i)
			args := [][]byte{[]byte("record"), []byte(fmt.Sprintf("dev%d", i%4)), []byte(fmt.Sprintf("%d-%d", blk, i))}
			resp, err := f.endorser.Endorse(peer.Proposal{
				TxID: txID, ChannelID: channelID, Chaincode: "bench", Args: args, Creator: creator,
			})
			if err != nil {
				b.Fatal(err)
			}
			txs[i] = &ledger.Transaction{
				ID: txID, ChannelID: channelID, Chaincode: "bench", Creator: creator, Args: args,
				RWSet:        resp.RWSet,
				Endorsements: []ledger.Endorsement{{Endorser: resp.Endorser, Signature: resp.Signature}},
			}
		}
		block, err := assembler.Assemble(orderer.Batch{Transactions: txs, Reason: orderer.CutMaxMessages})
		if err != nil {
			b.Fatal(err)
		}
		blocks = append(blocks, block)
	}
	return blocks
}

// BenchmarkCommitAsync measures the async cross-block commit pipeline: a
// 24-block deliver stream (10 CRDT transactions per block) driven through
// Peer.CommitPipeline at depths 0/1/2/4 over the DURABLE peer
// configuration (disk backend with its default block store, fsync per
// committed block — each commit appends the block body, then the state
// batch, and syncs both). Depth 0 is the
// synchronous baseline; depth >= 1 decodes and endorsement-validates
// block N+1 while block N is in merge/mvcc/apply/append. Workers is
// pinned to 1 so intra-block parallelism contributes nothing — the
// measured speedup is pure cross-block overlap. On a multi-core host the
// whole prepare stage (decode + ed25519 verification) hides behind the
// previous block's commit; on a single-core host only finalize's true
// waits (the per-block fsync) can be hidden, which is why the benchmark
// runs the durable configuration — it is both the production shape and
// the one with real latency to hide anywhere. The reported figure is the
// MEDIAN iteration (fsync hiccups and host jitter on this shared
// single-core container are outliers that would swamp the overlap signal
// in a mean). Commit outcomes are identical at every depth
// (TestCommitPipelineDepthDeterminism); only wall clock moves.
func BenchmarkCommitAsync(b *testing.B) {
	const nBlocks, blockTxs = 24, 10
	depths := []int{0, 1, 2, 4}
	fix := newCommitFixture(b, true)
	blocks := fix.endorsedStream(b, nBlocks, blockTxs)
	runs := make(map[int][]time.Duration, len(depths))
	lastPeers := make(map[int]*peer.Peer, len(depths))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Depths are interleaved within each iteration (not one
		// sub-benchmark window per depth) so a host-load spike on this
		// shared container degrades every depth equally instead of
		// biasing whichever depth it lands on.
		for _, depth := range depths {
			b.StopTimer()
			p := fix.newPeer(b, peer.CommitterConfig{
				Workers: 1, Pipeline: depth,
				Backend: peer.BackendDisk, DataDir: b.TempDir(), SyncEveryApply: true,
			})
			lastPeers[depth] = p
			deliver := make(chan *ledger.Block, len(blocks))
			for _, blk := range blocks {
				deliver <- blk
			}
			close(deliver)
			b.StartTimer()
			start := time.Now()
			if err := p.CommitPipeline(fix.channels[0], deliver, depth); err != nil {
				b.Fatal(err)
			}
			runs[depth] = append(runs[depth], time.Since(start))
			b.StopTimer()
			if h := p.Height(); h != nBlocks {
				b.Fatalf("depth %d: height %d, want %d", depth, h, nBlocks)
			}
			if err := p.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	for _, depth := range depths {
		rs := runs[depth]
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		median := rs[len(rs)/2]
		nsPerBlock := median.Nanoseconds() / nBlocks
		txPerSec := float64(nBlocks*blockTxs) / (float64(median.Nanoseconds()) / 1e9)
		b.ReportMetric(txPerSec, fmt.Sprintf("tx/s@depth%d", depth))
		recordCommitBench(b, commitBenchEntry{
			CRDT: true, Backend: peer.BackendDisk, PersistBlocks: true, Pipeline: depth,
			BlockTxs: blockTxs, Workers: 1,
			NsPerBlock: nsPerBlock, TxPerSec: txPerSec,
		}.obsSnapshot(lastPeers[depth]))
	}
}

// plainBenchChaincode reads and rewrites an ordinary key — the MVCC-
// validated transaction shape the finalize scheduler's wavefronts apply to
// (CRDT-flagged writes leave the schedule for the merge path).
func plainBenchChaincode() chaincode.Chaincode {
	return chaincode.Func(func(stub chaincode.Stub) error {
		_, params := stub.Function()
		if _, err := stub.GetState(params[0]); err != nil {
			return err
		}
		return stub.PutState(params[0], []byte(params[1]))
	})
}

// endorsedPlainBlock assembles a block of n plain (MVCC-validated)
// transactions in which conflictPct percent read-and-write one shared hot
// key (a dependency chain the scheduler must serialize) and the rest touch
// unique keys (a single wavefront). The endorser must have "plainbench"
// installed.
func (f *commitFixture) endorsedPlainBlock(b *testing.B, n, conflictPct int) *ledger.Block {
	b.Helper()
	creator, err := f.client.Identity.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	channelID := f.channels[0]
	txs := make([]*ledger.Transaction, n)
	for i := range txs {
		key := fmt.Sprintf("u-%d-%d", conflictPct, i)
		if i*100 < n*conflictPct {
			key = "hot"
		}
		txID := fmt.Sprintf("fin-%d-%d", conflictPct, i)
		args := [][]byte{[]byte("put"), []byte(key), []byte(fmt.Sprintf("%d", i))}
		resp, err := f.endorser.Endorse(peer.Proposal{
			TxID: txID, ChannelID: channelID, Chaincode: "plainbench", Args: args, Creator: creator,
		})
		if err != nil {
			b.Fatal(err)
		}
		txs[i] = &ledger.Transaction{
			ID: txID, ChannelID: channelID, Chaincode: "plainbench", Creator: creator, Args: args,
			RWSet:        resp.RWSet,
			Endorsements: []ledger.Endorsement{{Endorser: resp.Endorser, Signature: resp.Signature}},
		}
	}
	chain, err := f.endorser.ChainOn(channelID)
	if err != nil {
		b.Fatal(err)
	}
	assembler := orderer.NewAssembler(chain.Last())
	block, err := assembler.Assemble(orderer.Batch{Transactions: txs, Reason: orderer.CutMaxMessages})
	if err != nil {
		b.Fatal(err)
	}
	return block
}

// BenchmarkCommitFinalize measures the intra-block dependency scheduler:
// one 100-transaction plain block at 0/25/100% conflict rate, finalized at
// 1/2/4/8 finalize workers with the endorsement-validation pool pinned
// (Workers=4) so only the finalize stage's parallelism moves. Conflict-free
// blocks are one wavefront — the shape multi-core hosts speed up; the
// all-conflicting block degenerates to one transaction per wave, the
// scheduler's honest worst case. On a single-core host every setting
// reports parity (the scheduler adds no parallelism to one CPU); that
// parity entry is recorded as-is rather than filtered.
func BenchmarkCommitFinalize(b *testing.B) {
	const blockTxs, workers = 100, 4
	fix := newCommitFixture(b, true)
	fix.endorser.InstallChaincode("plainbench", plainBenchChaincode(), fix.policy)
	for _, conflictPct := range []int{0, 25, 100} {
		block := fix.endorsedPlainBlock(b, blockTxs, conflictPct)
		// Only the first transaction of the hot-key chain survives MVCC.
		wantCommitted := blockTxs
		if conflictPct > 0 {
			wantCommitted = blockTxs - blockTxs*conflictPct/100 + 1
		}
		for _, fw := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("conflict=%d/finalize=%d", conflictPct, fw), func(b *testing.B) {
				cfg := peer.CommitterConfig{Workers: workers, FinalizeWorkers: fw}
				var total time.Duration
				var lastPeer *peer.Peer
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					p := fix.newPeer(b, cfg)
					p.InstallChaincode("plainbench", plainBenchChaincode(), fix.policy)
					lastPeer = p
					b.StartTimer()
					start := time.Now()
					res, err := p.CommitBlock(block)
					if err != nil {
						b.Fatal(err)
					}
					total += time.Since(start)
					if res.CommittedTx != wantCommitted {
						b.Fatalf("committed %d/%d", res.CommittedTx, wantCommitted)
					}
				}
				nsPerBlock := total.Nanoseconds() / int64(b.N)
				txPerSec := float64(blockTxs) / (float64(nsPerBlock) / 1e9)
				b.ReportMetric(txPerSec, "tx/s")
				for _, s := range lastPeer.CommitTimings() {
					if s.Stage == peer.StageFinalize || s.Stage == peer.StageSchedule || s.Stage == peer.StageMVCC {
						b.ReportMetric(float64(s.Avg.Nanoseconds()), s.Stage+"_ns")
					}
				}
				recordCommitBench(b, commitBenchEntry{
					CRDT: true, Backend: peer.BackendMemory, BlockTxs: blockTxs,
					Workers: workers, FinalizeWorkers: fw, ConflictRate: conflictPct,
					NsPerBlock: nsPerBlock, TxPerSec: txPerSec,
				}.obsSnapshot(lastPeer))
			})
		}
	}
}

// endorsedWideStream assembles nBlocks hash-chained blocks of txsPerBlock
// CRDT transactions cycling over nKeys distinct device keys, each reading
// padded to padBytes — a stream whose committed world state outgrows the
// LSM memtable (so it spills to sorted runs) and whose second pass over
// the keyspace re-reads every spilled document through the block cache.
func (f *commitFixture) endorsedWideStream(b *testing.B, nBlocks, txsPerBlock, nKeys, padBytes int) []*ledger.Block {
	b.Helper()
	creator, err := f.client.Identity.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	channelID := f.channels[0]
	chain, err := f.endorser.ChainOn(channelID)
	if err != nil {
		b.Fatal(err)
	}
	pad := strings.Repeat("x", padBytes)
	assembler := orderer.NewAssembler(chain.Last())
	blocks := make([]*ledger.Block, 0, nBlocks)
	for blk := 0; blk < nBlocks; blk++ {
		txs := make([]*ledger.Transaction, txsPerBlock)
		for i := range txs {
			idx := blk*txsPerBlock + i
			txID := fmt.Sprintf("wide-%d-%d", blk, i)
			args := [][]byte{[]byte("record"),
				[]byte(fmt.Sprintf("wide-%04d", idx%nKeys)),
				[]byte(fmt.Sprintf("%s-%d", pad, idx))}
			resp, err := f.endorser.Endorse(peer.Proposal{
				TxID: txID, ChannelID: channelID, Chaincode: "bench", Args: args, Creator: creator,
			})
			if err != nil {
				b.Fatal(err)
			}
			txs[i] = &ledger.Transaction{
				ID: txID, ChannelID: channelID, Chaincode: "bench", Creator: creator, Args: args,
				RWSet:        resp.RWSet,
				Endorsements: []ledger.Endorsement{{Endorser: resp.Endorser, Signature: resp.Signature}},
			}
		}
		block, err := assembler.Assemble(orderer.Batch{Transactions: txs, Reason: orderer.CutMaxMessages})
		if err != nil {
			b.Fatal(err)
		}
		blocks = append(blocks, block)
	}
	return blocks
}

// BenchmarkCommitLSMCache drives the LSM backend with a committed dataset
// LARGER than its block cache, then with the cache comfortably oversized —
// the pair of BENCH_commit.json entries that prices cache pressure. The
// stream writes ~512 ten-KiB CRDT documents (spilling the 4 MiB memtable
// into sorted runs mid-stream, asserted via Stats), then revisits every
// key, so each merge re-reads its document through the cache: at 64 KiB
// the working set evicts constantly, at 64 MiB every block load after the
// first is a hit. One fresh peer and data directory per iteration.
func BenchmarkCommitLSMCache(b *testing.B) {
	const (
		nBlocks  = 32
		blockTxs = 32
		nKeys    = 512
		padBytes = 10 << 10
		workers  = 4
	)
	fix := newCommitFixture(b, true)
	blocks := fix.endorsedWideStream(b, nBlocks, blockTxs, nKeys, padBytes)
	for _, tc := range []struct {
		label      string
		cacheBytes int64
	}{
		{"cache-smaller-than-dataset", 64 << 10},
		{"cache-larger-than-dataset", 64 << 20},
	} {
		b.Run(tc.label, func(b *testing.B) {
			var total time.Duration
			var lastPeer *peer.Peer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := fix.newPeer(b, peer.CommitterConfig{
					Workers: workers, Backend: peer.BackendLSM, DataDir: b.TempDir(),
					PersistBlocks: peer.PersistBlocksOff, StateCacheBytes: tc.cacheBytes,
				})
				lastPeer = p
				b.StartTimer()
				start := time.Now()
				for _, blk := range blocks {
					res, err := p.CommitBlock(blk)
					if err != nil {
						b.Fatal(err)
					}
					if res.CommittedTx != blockTxs {
						b.Fatalf("block %d committed %d/%d", blk.Header.Number, res.CommittedTx, blockTxs)
					}
				}
				total += time.Since(start)
				b.StopTimer()
				st, ok := p.DB().Stats()
				if !ok {
					b.Fatal("LSM backend reported no stats")
				}
				if st.Flushes == 0 {
					b.Fatal("dataset never spilled the memtable: the benchmark is not exercising sorted runs")
				}
				if i == b.N-1 {
					b.ReportMetric(float64(st.Flushes), "flushes")
					b.ReportMetric(float64(st.CacheHits), "cache_hits")
					b.ReportMetric(float64(st.CacheMisses), "cache_misses")
				}
				if err := p.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			nsPerBlock := total.Nanoseconds() / int64(b.N) / nBlocks
			txPerSec := float64(nBlocks*blockTxs) / (float64(total.Nanoseconds()) / float64(b.N) / 1e9)
			b.ReportMetric(txPerSec, "tx/s")
			recordCommitBench(b, commitBenchEntry{
				CRDT: true, Backend: peer.BackendLSM, CacheBytes: tc.cacheBytes,
				BlockTxs: blockTxs, Workers: workers,
				NsPerBlock: nsPerBlock, TxPerSec: txPerSec,
			}.obsSnapshot(lastPeer))
		})
	}
}

// BenchmarkCommitChannels is the multi-channel scaling benchmark: one
// pre-endorsed 100-transaction block per channel, committed on all
// channels CONCURRENTLY by one peer, at 1/2/4/8 channels. Workers is
// pinned to 1 so each channel's pipeline is serial — the measured speedup
// is pure channel parallelism (per-channel commit mutexes, nothing
// shared), the property the multi-channel runtime exists for. The
// headline metric is aggregate tx/s across channels; near-linear growth
// up to the core count is the expected shape.
func BenchmarkCommitChannels(b *testing.B) {
	const blockTxs = 100
	for _, nCh := range []int{1, 2, 4, 8} {
		ids := make([]string, nCh)
		for i := range ids {
			ids[i] = fmt.Sprintf("bench%d", i)
		}
		fix := newCommitFixtureChannels(b, true, ids...)
		blocks := make(map[string]*ledger.Block, nCh)
		for _, id := range ids {
			blocks[id] = fix.endorsedBlockOn(b, id, blockTxs)
		}
		b.Run(fmt.Sprintf("channels=%d", nCh), func(b *testing.B) {
			cfg := peer.CommitterConfig{Workers: 1}
			var total time.Duration
			var lastPeer *peer.Peer
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := fix.newPeer(b, cfg)
				lastPeer = p
				b.StartTimer()
				start := time.Now()
				var wg sync.WaitGroup
				errCh := make(chan error, nCh)
				for _, id := range ids {
					wg.Add(1)
					go func(id string) {
						defer wg.Done()
						res, err := p.CommitBlockOn(id, blocks[id])
						if err != nil {
							errCh <- err
							return
						}
						if res.CommittedTx != blockTxs {
							errCh <- fmt.Errorf("channel %s committed %d/%d", id, res.CommittedTx, blockTxs)
						}
					}(id)
				}
				wg.Wait()
				total += time.Since(start)
				close(errCh)
				for err := range errCh {
					b.Fatal(err)
				}
			}
			nsPerRound := total.Nanoseconds() / int64(b.N)
			aggTxPerSec := float64(nCh*blockTxs) / (float64(nsPerRound) / 1e9)
			b.ReportMetric(aggTxPerSec, "tx/s")
			recordCommitBench(b, commitBenchEntry{
				CRDT: true, Backend: peer.BackendMemory, Channels: nCh,
				BlockTxs: blockTxs, Workers: 1,
				NsPerBlock: nsPerRound, TxPerSec: aggTxPerSec,
			}.obsSnapshot(lastPeer))
		})
	}
}
