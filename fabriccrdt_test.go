// Public-API tests: everything the examples rely on must work through the
// facade, without touching internal packages (except test fixtures).
package fabriccrdt_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"fabriccrdt"
)

// newLiveNet builds a small started network with the IoT chaincode
// installed; used by public-API tests and the live benchmark.
func newLiveNet(tb testing.TB, enableCRDT bool) (*fabriccrdt.Network, func()) {
	tb.Helper()
	cfg := fabriccrdt.PaperTopology(10, enableCRDT)
	cfg.Orderer.BatchTimeout = 100 * time.Millisecond
	net, err := fabriccrdt.NewNetwork(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	cc := fabriccrdt.ChaincodeFunc(func(stub fabriccrdt.ChaincodeStub) error {
		_, params := stub.Function()
		device, reading := params[0], params[1]
		if _, err := stub.GetState(device); err != nil {
			return err
		}
		delta, err := json.Marshal(map[string]any{
			"tempReadings": []any{map[string]any{"temperature": reading}},
		})
		if err != nil {
			return err
		}
		return stub.PutCRDT(device, delta)
	})
	if err := net.InstallChaincode("iot", cc, "OR('Org1.member','Org2.member','Org3.member')"); err != nil {
		tb.Fatal(err)
	}
	net.Start()
	return net, func() { net.Stop() }
}

func TestPublicAPIEndToEnd(t *testing.T) {
	net, cleanup := newLiveNet(t, true)
	defer cleanup()
	cli, err := net.NewClient("Org1", "app", []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}
	code, err := cli.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte("dev"), []byte("21"))
	if err != nil {
		t.Fatal(err)
	}
	if code != fabriccrdt.CodeCRDTMerged {
		t.Fatalf("code = %v", code)
	}
	doc, err := fabriccrdt.LoadMergedDoc(net.Peers()[0], "dev")
	if err != nil || doc == nil {
		t.Fatalf("LoadMergedDoc = %v, %v", doc, err)
	}
	if doc.AppliedCount() == 0 {
		t.Fatal("merged doc has no operations")
	}
}

func TestPublicJSONDocAPI(t *testing.T) {
	doc := fabriccrdt.NewJSONDoc("app", fabriccrdt.WithOpLog())
	if _, err := doc.Assign("hello", "greeting"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Append("x", "items"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Assign(fabriccrdt.EmptyMap, "nested"); err != nil {
		t.Fatal(err)
	}
	if _, err := doc.Assign(1.5, "nested", "value"); err != nil {
		t.Fatal(err)
	}
	ops := doc.TakeOps()
	replica := fabriccrdt.NewJSONDoc("other")
	for _, op := range ops {
		if err := replica.ApplyOp(op); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(doc.ToJSON(), replica.ToJSON()) {
		t.Fatalf("replica diverged: %v vs %v", doc.ToJSON(), replica.ToJSON())
	}
}

func TestPublicCRDTRegistry(t *testing.T) {
	reg := fabriccrdt.NewCRDTRegistry()
	types := reg.Types()
	if len(types) < 7 {
		t.Fatalf("registry has %d types: %v", len(types), types)
	}
	c, err := reg.New("g-counter")
	if err != nil {
		t.Fatal(err)
	}
	gc, ok := c.(*fabriccrdt.GCounter)
	if !ok {
		t.Fatalf("g-counter factory returned %T", c)
	}
	gc.Increment("r1", 5)
	if gc.Sum() != 5 {
		t.Fatalf("sum = %d", gc.Sum())
	}
}

func TestPublicStockFabricMode(t *testing.T) {
	net, cleanup := newLiveNet(t, false)
	defer cleanup()
	cli, err := net.NewClient("Org1", "app", []string{"Org1"})
	if err != nil {
		t.Fatal(err)
	}
	// Sequential (non-conflicting) submissions all succeed on stock Fabric.
	for i := 0; i < 3; i++ {
		code, err := cli.SubmitAndWait(10*time.Second, "iot", []byte("record"), []byte(fmt.Sprintf("d%d", i)), []byte("20"))
		if err != nil {
			t.Fatal(err)
		}
		if code != fabriccrdt.CodeValid {
			t.Fatalf("code = %v, want VALID", code)
		}
	}
}
