module fabriccrdt

go 1.24
