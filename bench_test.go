// Benchmarks regenerating (at reduced scale) every figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Each figure bench
// runs one representative cell per sub-range; the full parameter sweeps at
// paper scale are produced by cmd/fabriccrdt-bench, whose output is recorded
// in EXPERIMENTS.md.
//
// Run: go test -bench=. -benchmem .
package fabriccrdt_test

import (
	"fmt"
	"testing"
	"time"

	"fabriccrdt/internal/core"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/rwset"
	"fabriccrdt/internal/simnet"
	"fabriccrdt/internal/statedb"
	"fabriccrdt/internal/workload"
)

// benchTotalTx keeps per-iteration work moderate; the simulated pipeline
// preserves the figures' shapes at this scale.
const benchTotalTx = 500

// benchModel keeps virtual-time constants but a low CPU scale so bench wall
// time stays dominated by the real merge work being measured.
func benchModel() *simnet.LatencyModel {
	m := simnet.DefaultLatencyModel()
	return &m
}

func runSim(b *testing.B, cfg simnet.Config) {
	b.Helper()
	res, err := simnet.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if res.Submitted != cfg.TotalTx {
		b.Fatalf("submitted %d, want %d", res.Submitted, cfg.TotalTx)
	}
	b.ReportMetric(res.Throughput, "vtx/s")
	b.ReportMetric(res.AvgLatency.Seconds(), "vlat_s")
	b.ReportMetric(float64(res.Successful), "success")
}

func figConfig(mode simnet.Mode, blockSize int, rate float64, wl workload.IoTParams) simnet.Config {
	return simnet.Config{
		Mode:      mode,
		BlockSize: blockSize,
		Rate:      rate,
		TotalTx:   benchTotalTx,
		Workload:  wl,
		Latency:   benchModel(),
		Engine:    core.Options{FreshDocPerBlock: true},
	}
}

var conflictAll = workload.IoTParams{ReadKeys: 1, WriteKeys: 1, JSONKeys: 2, ConflictPct: 100}

// BenchmarkFig3BlockSize regenerates Figure 3: block-size sweep, both
// systems, all transactions conflicting.
func BenchmarkFig3BlockSize(b *testing.B) {
	for _, size := range []int{25, 100, 400, 1000} {
		for _, mode := range []simnet.Mode{simnet.ModeFabricCRDT, simnet.ModeFabric} {
			b.Run(fmt.Sprintf("%s/block=%d", mode, size), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runSim(b, figConfig(mode, size, 300, conflictAll))
				}
			})
		}
	}
}

// BenchmarkFig4ReadWriteKeys regenerates Figure 4: read/write-set sizes.
func BenchmarkFig4ReadWriteKeys(b *testing.B) {
	for _, p := range []struct{ r, w int }{{1, 1}, {3, 3}, {5, 5}} {
		wl := workload.IoTParams{ReadKeys: p.r, WriteKeys: p.w, JSONKeys: 2, ConflictPct: 100}
		b.Run(fmt.Sprintf("FabricCRDT/rw=%d-%d", p.r, p.w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSim(b, figConfig(simnet.ModeFabricCRDT, 25, 300, wl))
			}
		})
		b.Run(fmt.Sprintf("Fabric/rw=%d-%d", p.r, p.w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSim(b, figConfig(simnet.ModeFabric, 400, 300, wl))
			}
		})
	}
}

// BenchmarkFig5JSONComplexity regenerates Figure 5: JSON object complexity.
func BenchmarkFig5JSONComplexity(b *testing.B) {
	for _, k := range []int{2, 4, 6} {
		wl := workload.IoTParams{ReadKeys: 1, WriteKeys: 1, JSONKeys: k, NestingDepth: k, ConflictPct: 100}
		b.Run(fmt.Sprintf("FabricCRDT/complexity=%d-%d", k, k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSim(b, figConfig(simnet.ModeFabricCRDT, 25, 300, wl))
			}
		})
	}
}

// BenchmarkFig6ArrivalRate regenerates Figure 6: arrival-rate sweep.
func BenchmarkFig6ArrivalRate(b *testing.B) {
	for _, rate := range []float64{100, 300, 500} {
		b.Run(fmt.Sprintf("FabricCRDT/rate=%.0f", rate), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSim(b, figConfig(simnet.ModeFabricCRDT, 25, rate, conflictAll))
			}
		})
	}
}

// BenchmarkFig7ConflictRatio regenerates Figure 7: conflicting-transaction
// percentage.
func BenchmarkFig7ConflictRatio(b *testing.B) {
	for _, pct := range []int{0, 40, 80} {
		wl := workload.IoTParams{ReadKeys: 1, WriteKeys: 1, JSONKeys: 2, ConflictPct: pct, Seed: 42}
		for _, mode := range []simnet.Mode{simnet.ModeFabricCRDT, simnet.ModeFabric} {
			blockSize := 25
			if mode == simnet.ModeFabric {
				blockSize = 400
			}
			b.Run(fmt.Sprintf("%s/conflict=%d%%", mode, pct), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runSim(b, figConfig(mode, blockSize, 300, wl))
				}
			})
		}
	}
}

// mergeBlockFixture builds one block of conflicting CRDT transactions.
func mergeBlockFixture(blockSize int) *ledger.Block {
	gen := workload.NewIoT(workload.IoTParams{ReadKeys: 1, WriteKeys: 1, JSONKeys: 2, ConflictPct: 100})
	txs := make([]*ledger.Transaction, blockSize)
	for i := range txs {
		spec := gen.Spec(i)
		txs[i] = &ledger.Transaction{
			ID: fmt.Sprintf("t%d", i),
			RWSet: rwset.ReadWriteSet{
				Writes: []rwset.Write{{Key: spec.Writes[0].Key, Value: spec.Writes[0].Delta, IsCRDT: true}},
			},
		}
	}
	return &ledger.Block{Header: ledger.BlockHeader{Number: 1}, Transactions: txs}
}

// BenchmarkAblationSecondPass quantifies DESIGN.md A1: Algorithm 1's
// literal per-transaction reserialization versus serialize-once-per-key.
func BenchmarkAblationSecondPass(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"paper-literal", core.Options{FreshDocPerBlock: true}},
		{"once-per-key", core.Options{FreshDocPerBlock: true, SerializeOncePerKey: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				block := mergeBlockFixture(400)
				engine := core.NewEngine(statedb.New(), variant.opts)
				codes := make([]ledger.ValidationCode, len(block.Transactions))
				b.StartTimer()
				if _, err := engine.MergeBlock(block, codes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSeeding quantifies DESIGN.md §3: the paper-literal fresh
// document per block versus cross-block seeding (true no-update-loss),
// committing 20 consecutive 25-transaction blocks to one key.
func BenchmarkAblationSeeding(b *testing.B) {
	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"fresh-per-block", core.Options{FreshDocPerBlock: true}},
		{"cross-block-seeded", core.Options{}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := statedb.New()
				engine := core.NewEngine(db, variant.opts)
				b.StartTimer()
				for blk := 0; blk < 20; blk++ {
					block := mergeBlockFixture(25)
					block.Header.Number = uint64(blk + 1)
					codes := make([]ledger.ValidationCode, len(block.Transactions))
					res, err := engine.MergeBlock(block, codes)
					if err != nil {
						b.Fatal(err)
					}
					batch := statedb.NewUpdateBatch()
					core.StageDocStates(batch, res)
					db.Apply(batch, rwset.Version{BlockNum: block.Header.Number})
				}
			}
		})
	}
}

// BenchmarkLiveNetworkEndToEnd measures the real goroutine network (not the
// simulator): conflicting transactions through 6 peers with ed25519
// endorsement.
func BenchmarkLiveNetworkEndToEnd(b *testing.B) {
	for _, enableCRDT := range []bool{true, false} {
		name := "FabricCRDT"
		if !enableCRDT {
			name = "Fabric"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				net, cleanup := newLiveNet(b, enableCRDT)
				b.StartTimer()
				cli, err := net.NewClient("Org1", "bench", []string{"Org1"})
				if err != nil {
					b.Fatal(err)
				}
				done := make(chan error, 50)
				for j := 0; j < 50; j++ {
					go func(j int) {
						_, err := cli.SubmitAndWait(30*time.Second, "iot",
							[]byte("record"), []byte("dev"), []byte(fmt.Sprintf("%d", j)))
						done <- err
					}(j)
				}
				committed := 0
				for j := 0; j < 50; j++ {
					if err := <-done; err == nil {
						committed++
					}
				}
				if enableCRDT && committed != 50 {
					b.Fatalf("FabricCRDT committed %d/50", committed)
				}
				b.StopTimer()
				cleanup()
				b.StartTimer()
			}
		})
	}
}
