#!/bin/sh
# Metric-name vet (runs in `make vet`): internal/obs/names.go is the single
# catalog of registry metric names. This check enforces:
#   1. every name in the catalog matches ^fabriccrdt_[a-z0-9_]+$
#   2. no name is declared twice
#   3. no .go file outside internal/obs contains a "fabriccrdt_..." string
#      literal — call sites must reference the obs.Metric* constants (the
#      obs package's own tests exercise the registry with literal names)
set -eu

cd "$(dirname "$0")/.."
catalog=internal/obs/names.go
fail=0

# Extract the quoted metric names from the catalog's declaration lines
# (skipping comments, which may show an abbreviated "fabriccrdt_...").
names=$(grep -E '^	Metric[A-Za-z]+ *= *"' "$catalog" | grep -o '"fabriccrdt_[^"]*"' | tr -d '"')
if [ -z "$names" ]; then
    echo "check_metrics: no metric names found in $catalog" >&2
    exit 1
fi

# 1. Shape: lowercase snake_case under the fabriccrdt_ prefix.
bad=$(printf '%s\n' "$names" | grep -vE '^fabriccrdt_[a-z0-9_]+$' || true)
if [ -n "$bad" ]; then
    echo "check_metrics: names violating ^fabriccrdt_[a-z0-9_]+\$:" >&2
    printf '%s\n' "$bad" >&2
    fail=1
fi

# 2. Uniqueness: each name declared exactly once.
dupes=$(printf '%s\n' "$names" | sort | uniq -d)
if [ -n "$dupes" ]; then
    echo "check_metrics: names declared more than once in $catalog:" >&2
    printf '%s\n' "$dupes" >&2
    fail=1
fi

# 3. Single catalog: no fabriccrdt_ literal outside internal/obs.
strays=$(grep -rn --include='*.go' '"fabriccrdt_' . | grep -v '^\./internal/obs/' || true)
if [ -n "$strays" ]; then
    echo "check_metrics: metric-name literals outside $catalog (use the obs.Metric* constants):" >&2
    printf '%s\n' "$strays" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_metrics: $(printf '%s\n' "$names" | wc -l | tr -d ' ') metric names OK"
