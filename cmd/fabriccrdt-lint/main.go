// fabriccrdt-lint runs the project-invariant analyzer suite
// (internal/lint) over the module: deadlock (no blocking operations
// under a held mutex — the DESIGN.md §7 bug class), determinism (no
// wall clock, randomness or unordered map iteration in commit-path
// packages), metricnames (internal/obs/names.go is the single metric
// catalog) and wireerr (transport.Error sets Op; sentinel comparisons
// use errors.Is).
//
// Usage:
//
//	fabriccrdt-lint [-checks deadlock,determinism,...] [packages]
//
// packages defaults to ./... . Findings print one per line as
// file:line:col: [check] message; any finding exits non-zero. See
// docs/ANALYZERS.md for the check catalog and the //lint:ignore /
// //lint:sorted suppression syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fabriccrdt/internal/lint"
)

func main() {
	var (
		checksFlag = flag.String("checks", "", "comma-separated checks to run (default: all)")
		listFlag   = flag.Bool("list", false, "list available checks and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, c := range lint.Checks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return
	}

	checks := lint.Checks()
	if *checksFlag != "" {
		checks = checks[:0:0]
		for _, name := range strings.Split(*checksFlag, ",") {
			c, ok := lint.CheckByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "fabriccrdt-lint: unknown check %q (use -list)\n", name)
				os.Exit(2)
			}
			checks = append(checks, c)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabriccrdt-lint: %v\n", err)
		os.Exit(2)
	}
	prog, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabriccrdt-lint: %v\n", err)
		os.Exit(2)
	}
	findings := prog.Run(checks)
	if len(findings) > 0 {
		fmt.Print(lint.Format(findings, wd))
		fmt.Fprintf(os.Stderr, "fabriccrdt-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	names := make([]string, len(checks))
	for i, c := range checks {
		names[i] = c.Name
	}
	fmt.Printf("fabriccrdt-lint: %d package(s) clean (%s)\n", len(prog.Units), strings.Join(names, ", "))
}
