// Command crdt-merge merges JSON documents with the JSON CRDT from the
// command line — a direct view of what a FabricCRDT peer does to the CRDT
// transactions of one block (paper Listings 1–2).
//
// Usage:
//
//	crdt-merge '{"readings":[{"t":"15"}]}' '{"readings":[{"t":"20"}]}'
//	cat deltas.jsonl | crdt-merge        # one JSON object per line
//	crdt-merge -state '{"a":["x"]}'      # also print full CRDT metadata
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fabriccrdt"
)

func main() {
	var (
		showState = flag.Bool("state", false, "also print the document's full CRDT state (metadata included)")
		replica   = flag.String("replica", "cli", "replica identifier for operation stamps")
	)
	flag.Parse()

	doc := fabriccrdt.NewJSONDoc(*replica)
	deltas := flag.Args()
	if len(deltas) == 0 {
		scanner := bufio.NewScanner(os.Stdin)
		scanner.Buffer(make([]byte, 1024*1024), 16*1024*1024)
		for scanner.Scan() {
			if line := scanner.Text(); line != "" {
				deltas = append(deltas, line)
			}
		}
		if err := scanner.Err(); err != nil {
			fatal(err)
		}
	}
	if len(deltas) == 0 {
		fatal(fmt.Errorf("no documents to merge (pass JSON objects as arguments or on stdin)"))
	}
	for i, raw := range deltas {
		var v any
		if err := json.Unmarshal([]byte(raw), &v); err != nil {
			fatal(fmt.Errorf("document %d is not valid JSON: %w", i+1, err))
		}
		if err := doc.MergeJSON(v); err != nil {
			fatal(fmt.Errorf("merging document %d: %w", i+1, err))
		}
	}
	out, err := json.MarshalIndent(doc.ToJSON(), "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
	if *showState {
		state, err := doc.MarshalBinary()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "--- CRDT state ---")
		fmt.Fprintln(os.Stderr, string(state))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crdt-merge:", err)
	os.Exit(1)
}
