// Command fabriccrdt-bench regenerates the paper's evaluation figures
// (Figures 3–7) by driving the real FabricCRDT/Fabric commit-path code
// through the virtual-time experiment harness.
//
// Usage:
//
//	fabriccrdt-bench                         # all figures, paper scale
//	fabriccrdt-bench -experiment fig3        # one figure
//	fabriccrdt-bench -txs 2000 -parallel 8   # reduced scale, more parallel
//
// Results should be compared against EXPERIMENTS.md, which records the
// paper's numbers next to a reference run of this command. Accurate virtual
// times need low -parallel values (cells measure their own CPU; heavy
// co-scheduling inflates it); -parallel 1 gives the most stable numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fabriccrdt/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run: all, fig3..fig7, blocksize, rwkeys, complexity, arrival, conflict")
		txs        = flag.Int("txs", experiments.PaperTotalTx, "transactions per cell (paper: 10000)")
		parallel   = flag.Int("parallel", 2, "concurrent cells (1 = most accurate timing)")
		verbose    = flag.Bool("v", false, "print per-cell progress")
		compare    = flag.Bool("compare", false, "print measured numbers side by side with the paper's")
	)
	flag.Parse()

	opts := experiments.Options{TotalTx: *txs, Parallel: *parallel}
	if *verbose {
		opts.Progress = os.Stderr
	}

	start := time.Now()
	var figs []experiments.Figure
	if *experiment == "all" {
		all, err := experiments.All(opts)
		if err != nil {
			fatal(err)
		}
		figs = all
	} else {
		run, err := experiments.ByID(*experiment)
		if err != nil {
			fatal(err)
		}
		fig, err := run(opts)
		if err != nil {
			fatal(err)
		}
		figs = []experiments.Figure{fig}
	}
	for _, fig := range figs {
		if *compare {
			experiments.PrintComparison(os.Stdout, fig)
		} else {
			experiments.Print(os.Stdout, fig)
		}
	}
	fmt.Fprintf(os.Stderr, "\ncompleted in %v (txs per cell: %d)\n", time.Since(start).Round(time.Second), *txs)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fabriccrdt-bench:", err)
	os.Exit(1)
}
