// Command fabricnet runs a live in-process Fabric/FabricCRDT network — the
// paper's 3-org × 2-peer topology with real goroutine peers, per-channel
// batching orderers and ed25519 endorsements — drives the paper's IoT
// workload (internal/workload, the Caliper stand-in) through it, and
// reports Caliper-style metrics.
//
// Usage:
//
//	fabricnet                    # FabricCRDT, 500 txs at 200 tx/s over 2 channels
//	fabricnet -crdt=false        # stock Fabric (watch transactions fail)
//	fabricnet -txs 2000 -rate 400 -block 50 -clients 8 -conflict 40
//	fabricnet -channels channel1,channel2,channel3,channel4   # 4-way sharding
//	fabricnet -backend disk -datadir ./net-state    # persistent peers
//	fabricnet -pipeline 4 -backend disk -datadir ./net-state -fsync
//	                             # durable peers, commits pipelined 4 deep
//	fabricnet -backend disk -datadir ./net-state -persist-blocks=false
//	                             # state checkpoint only, no block bodies
//	fabricnet -backend lsm -datadir ./net-state -state-cache 64
//	                             # log-structured state store, 64 MiB block
//	                             # cache per channel (docs/STATEDB.md)
//
// Channels are the sharding unit: the workload generator assigns each
// transaction a channel round-robin (workload.IoTParams.Channels), clients
// submit through multi-channel clients, every channel orders and commits
// independently, and the run reports per-channel block heights. With
// -backend disk or -backend lsm, rerunning with the same -datadir restores
// every peer's world state and resumes each channel from its own recorded
// block height; block bodies persist too by default (-persist-blocks), so
// restarted peers keep serving their full history and can rebuild their
// world state from block 0 (docs/PERSISTENCE.md). The lsm backend
// additionally keeps its resident memory independent of the keyspace —
// world state can outgrow RAM, bounded by the -state-cache block cache.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"fabriccrdt"

	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/obs"
	"fabriccrdt/internal/workload"
)

func main() {
	var (
		enableCRDT  = flag.Bool("crdt", true, "run FabricCRDT (false = stock Fabric)")
		totalTx     = flag.Int("txs", 500, "total transactions to submit")
		rate        = flag.Float64("rate", 200, "aggregate submission rate (tx/s)")
		blockSize   = flag.Int("block", 25, "orderer max transactions per block")
		clients     = flag.Int("clients", 4, "number of concurrent multi-channel clients")
		channelList = flag.String("channels", "channel1,channel2", "comma-separated channel list; each channel gets its own orderer and per-peer commit pipeline")
		conflict    = flag.Int("conflict", 100, "percentage of transactions targeting each channel's shared hot key (paper Table 5)")
		workers     = flag.Int("workers", 0, "commit-pipeline workers per peer per channel (0 = adaptive: NumCPU spread across channels)")
		finalizeW   = flag.Int("finalize-workers", 0, "intra-block finalize workers per peer per channel: >1 validates non-conflicting transactions of a block concurrently along a dependency-graph schedule, 1 = serial finalize, 0 = inherit -workers (outcomes are identical at every setting)")
		pipeline    = flag.Int("pipeline", 1, "async commit pipeline depth per (peer, channel): how many delivered blocks are decoded and endorsement-validated ahead of the serialized commit stage (0 = synchronous; outcomes are identical at every depth)")
		shards      = flag.Int("shards", 1, "state database shards per peer (1 = single-lock map)")
		backend     = flag.String("backend", "", "state backend per peer: memory|sharded|disk|lsm (default: memory, or sharded when -shards > 1)")
		datadir     = flag.String("datadir", "", "data directory for -backend disk/lsm (one subdirectory per peer, then per channel)")
		fsync       = flag.Bool("fsync", false, "fsync each peer's state log (and block log) after every committed block (-backend disk/lsm only): closes the power-loss window; the async pipeline hides the added latency")
		persist     = flag.Bool("persist-blocks", true, "persist committed block bodies in each peer's durable block store (-backend disk/lsm only): restarted peers then serve their full history to lagging peers and can rebuild their world state from block 0")
		stateCache  = flag.Int("state-cache", 0, "LSM block cache size in MiB per peer per channel (-backend lsm only; 0 = the 32 MiB default): bounds the memory spent caching sorted-run blocks for reads")
		timings     = flag.Bool("timings", false, "print per-stage commit latencies per peer")

		// Observability (docs/OBSERVABILITY.md), available in every role and
		// the in-process benchmark.
		metricsAddr = flag.String("metrics-addr", "", "HTTP listen address serving /metrics (Prometheus text), /healthz, /readyz and /debug/pprof (e.g. 127.0.0.1:9090; empty = disabled)")
		traceOut    = flag.String("trace-out", "", "enable transaction tracing and write a Chrome trace-event JSON file here on shutdown (load it at chrome://tracing or https://ui.perfetto.dev)")
		queueWarn   = flag.Int("queue-warn", obs.DefaultQueueWarnDepth, "log a rate-limited warning when any unbounded handoff queue exceeds this depth (0 disables)")

		// Multi-process roles (see roles.go): split the network into
		// separate OS processes over the wire transport.
		role         = flag.String("role", "", "multi-process role: orderer, peer or client (empty = in-process benchmark)")
		listen       = flag.String("listen", "", "wire listen address for -role orderer/peer (e.g. 127.0.0.1:7050, port 0 picks one)")
		connect      = flag.String("connect", "", "wire address to connect to: the orderer for -role peer, comma-separated peers for -role client")
		nodeName     = flag.String("name", "", "node name for -role peer (default <org>.peer0) or client")
		org          = flag.String("org", "Org1", "organization for -role peer/client (Org1, Org2 or Org3)")
		caSeed       = flag.String("ca-seed", "fabricnet-demo", "shared deterministic CA seed: every process started with the same seed derives the same organization roots")
		batchTimeout = flag.Duration("batch-timeout", 2*time.Second, "orderer batch timeout (paper: 2s)")
	)
	flag.Parse()
	persistSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "persist-blocks" {
			persistSet = true
		}
	})

	channels, err := parseChannels(*channelList)
	if err != nil {
		fatal(err)
	}

	persistBlocks := fabriccrdt.PersistBlocksAuto
	switch *backend {
	case "", fabriccrdt.BackendMemory, fabriccrdt.BackendSharded:
		if *datadir != "" {
			fatal(fmt.Errorf("-datadir is only used with -backend disk or lsm; nothing would be persisted"))
		}
		if *fsync {
			fatal(fmt.Errorf("-fsync is only used with -backend disk or lsm; there is no log to sync"))
		}
		if persistSet {
			fatal(fmt.Errorf("-persist-blocks is only used with -backend disk or lsm; there is no durable store to hold block bodies"))
		}
	case fabriccrdt.BackendDisk, fabriccrdt.BackendLSM:
		if *datadir == "" {
			fatal(fmt.Errorf("-backend %s requires -datadir", *backend))
		}
		// Defaulted flag = Auto: block persistence on, but a datadir from
		// before the block store is adopted checkpoint-only instead of
		// refused. Spelling the flag out insists on the chosen mode.
		switch {
		case !persistSet:
			persistBlocks = fabriccrdt.PersistBlocksAuto
		case *persist:
			persistBlocks = fabriccrdt.PersistBlocksOn
		default:
			persistBlocks = fabriccrdt.PersistBlocksOff
		}
	default:
		fatal(fmt.Errorf("unknown -backend %q (want memory, sharded, disk or lsm)", *backend))
	}
	if *stateCache < 0 {
		fatal(fmt.Errorf("-state-cache must be >= 0 MiB (got %d)", *stateCache))
	}
	if *stateCache > 0 && *backend != fabriccrdt.BackendLSM {
		fatal(fmt.Errorf("-state-cache is only used with -backend lsm; the other backends have no block cache"))
	}
	if *pipeline < 0 {
		fatal(fmt.Errorf("-pipeline must be >= 0 (got %d)", *pipeline))
	}

	// The paper's IoT workload generator is the transaction source: it
	// assigns each transaction its keys (hot vs cold, -conflict) and its
	// channel (round-robin over -channels — the channel-mix knob).
	gen := workload.NewIoT(workload.IoTParams{
		ConflictPct: *conflict,
		Channels:    channels,
		Seed:        42,
	})

	// A -role flag switches from the in-process benchmark to one node of a
	// multi-process deployment over the wire transport (roles.go).
	if *role != "" {
		err := runRole(roleOpts{
			role:         *role,
			listen:       *listen,
			connect:      *connect,
			name:         *nodeName,
			org:          *org,
			caSeed:       *caSeed,
			channels:     channels,
			blockSize:    *blockSize,
			batchTimeout: *batchTimeout,
			enableCRDT:   *enableCRDT,
			txs:          *totalTx,
			gen:          gen,
			metricsAddr:  *metricsAddr,
			traceOut:     *traceOut,
			queueWarn:    *queueWarn,
			committer: fabriccrdt.CommitterConfig{
				Workers:         *workers,
				FinalizeWorkers: *finalizeW,
				Pipeline:        *pipeline,
				StateShards:     *shards,
				Backend:         *backend,
				DataDir:         *datadir,
				PersistBlocks:   persistBlocks,
				SyncEveryApply:  *fsync,
				StateCacheBytes: int64(*stateCache) << 20,
			},
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	cfg := fabriccrdt.PaperTopology(*blockSize, *enableCRDT)
	cfg.Channels = channels
	cfg.Orderer.BatchTimeout = *batchTimeout
	cfg.Committer = fabriccrdt.CommitterConfig{
		Workers:         *workers,
		FinalizeWorkers: *finalizeW,
		Pipeline:        *pipeline,
		StateShards:     *shards,
		Backend:         *backend,
		DataDir:         *datadir,
		PersistBlocks:   persistBlocks,
		SyncEveryApply:  *fsync,
		StateCacheBytes: int64(*stateCache) << 20,
	}
	net, err := fabriccrdt.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	ob, err := startObs("fabricnet", *metricsAddr, *traceOut, *queueWarn, net.Registries()...)
	if err != nil {
		fatal(err)
	}
	defer ob.shutdown()
	if err := net.InstallChaincode("iot", gen.Chaincode(), "OR('Org1.member','Org2.member','Org3.member')"); err != nil {
		fatal(err)
	}
	net.Start()
	defer net.Stop()
	ob.setReady()

	mode := "FabricCRDT"
	if !*enableCRDT {
		mode = "Fabric"
	}
	fmt.Printf("%s network: 3 orgs x 2 peers, %d channel(s) %v, block size %d, pipeline depth %d, %d clients, %d txs at %.0f tx/s, %d%% conflicting\n",
		mode, len(channels), channels, *blockSize, *pipeline, *clients, *totalTx, *rate, *conflict)
	for _, ch := range channels {
		if h, err := net.Peers()[0].HeightOn(ch); err == nil && h > 0 {
			fmt.Printf("resumed %s from %s: persisted state at block height %d, new blocks continue from %d\n",
				ch, *datadir, h, h+1)
		}
	}

	// Each client is a multi-channel client; transaction i goes to the
	// channel its workload spec names, so the generator's channel mix is
	// what shards the load.
	orgs := []string{"Org1", "Org2", "Org3"}
	mcs := make([]*fabriccrdt.MultiClient, *clients)
	for i := range mcs {
		org := orgs[i%len(orgs)]
		mc, err := net.NewMultiClient(org, fmt.Sprintf("caliper-%d", i), []string{org})
		if err != nil {
			fatal(err)
		}
		mcs[i] = mc
	}

	var (
		mu        sync.Mutex
		codes     = make(map[string]int)
		perChan   = make(map[string]int)
		latencies []time.Duration
	)
	interTx := time.Duration(float64(time.Second) / *rate)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *totalTx; i++ {
		// Pace submissions at the configured aggregate rate.
		if sleep := time.Until(start.Add(time.Duration(i) * interTx)); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mc := mcs[i%len(mcs)]
			ch := gen.ChannelFor(i)
			t0 := time.Now()
			code, err := mc.SubmitAndWait(60*time.Second, ch, "iot", workload.SpecArgs(i)...)
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil && code == ledger.CodeNotValidated:
				codes["error: "+err.Error()]++
			default:
				codes[code.String()]++
				if code.Committed() {
					latencies = append(latencies, lat)
					perChan[ch]++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	net.Stop()
	if err := net.Err(); err != nil {
		fatal(err)
	}

	fmt.Printf("\n%d transactions in %v\n", *totalTx, elapsed.Round(time.Millisecond))
	keys := make([]string, 0, len(codes))
	for k := range codes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-28s %6d\n", k, codes[k])
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		fmt.Printf("successful throughput: %.1f tx/s\n", float64(len(latencies))/elapsed.Seconds())
		fmt.Printf("latency avg/p50/p95:   %v / %v / %v\n",
			(sum / time.Duration(len(latencies))).Round(time.Millisecond),
			latencies[len(latencies)/2].Round(time.Millisecond),
			latencies[len(latencies)*95/100].Round(time.Millisecond))
	}

	// Per-channel outcome: committed txs, block height, and the converged
	// hot-key document on one peer — channels are independent ledgers, so
	// each has its own height and its own copy of the hot device document.
	p := net.Peers()[0]
	hotKey := gen.HotKeys()[0]
	fmt.Printf("\nper-channel state on %s:\n", p.Name())
	for _, ch := range channels {
		height, err := p.HeightOn(ch)
		if err != nil {
			fatal(err)
		}
		line := fmt.Sprintf("  %-12s height %-4d committed %-5d", ch, height, perChan[ch])
		if db, err := p.DBOn(ch); err == nil {
			if vv, ok := db.Get(hotKey); ok {
				if n, ok := readingCount(vv.Value); ok {
					line += fmt.Sprintf(" hot-key readings %d", n)
				}
			}
		}
		fmt.Println(line)
	}
	for _, p := range net.Peers() {
		for _, ch := range channels {
			chain, err := p.ChainOn(ch)
			if err != nil {
				fatal(err)
			}
			if err := chain.Verify(); err != nil {
				fatal(fmt.Errorf("chain verification on %s/%s: %w", p.Name(), ch, err))
			}
		}
	}
	fmt.Printf("all %d peer chains verified on all %d channel(s)\n", len(net.Peers()), len(channels))

	if *timings {
		fmt.Println("\ncommit pipeline stage latencies (avg over committed blocks, all channels):")
		for _, p := range net.Peers() {
			fmt.Printf("  %-12s", p.Name())
			for _, s := range p.CommitTimings() {
				fmt.Printf(" %s=%v", s.Stage, s.Avg.Round(time.Microsecond))
			}
			fmt.Println()
		}
		// Wall-clock vs CPU-time rollup: stages overlap (async pipeline,
		// merge beside MVCC), so CPU above Wall measures the concurrency won.
		fmt.Println("commit totals (wall = elapsed pipeline time, cpu = summed stage work):")
		for _, p := range net.Peers() {
			agg := p.CommitAggregate()
			fmt.Printf("  %-12s wall=%v cpu=%v\n", p.Name(),
				agg.Wall.Round(time.Microsecond), agg.CPU.Round(time.Microsecond))
		}
		fmt.Println("finalize scheduler (dependency-graph stats over scheduled blocks):")
		for _, p := range net.Peers() {
			fmt.Printf("  %-12s", p.Name())
			for _, c := range p.SchedulerCounters() {
				fmt.Printf(" %s=%d", c.Name, c.Value)
			}
			fmt.Println()
		}
	}
}

// readingCount extracts the merged hot-key document's reading-list length
// (the workload's Listing 3 shape: "temperatureReadings1").
func readingCount(doc []byte) (int, bool) {
	var parsed map[string]any
	if err := json.Unmarshal(doc, &parsed); err != nil {
		return 0, false
	}
	readings, ok := parsed["temperatureReadings1"].([]any)
	if !ok {
		return 0, false
	}
	return len(readings), true
}

// parseChannels splits and validates the -channels flag: names must be
// non-empty, filesystem-safe and unique.
func parseChannels(list string) ([]string, error) {
	parts := strings.Split(list, ",")
	channels := make([]string, 0, len(parts))
	for _, p := range parts {
		channels = append(channels, strings.TrimSpace(p))
	}
	if err := fabriccrdt.ValidateChannels(channels); err != nil {
		return nil, fmt.Errorf("bad -channels %q: %w", list, err)
	}
	return channels, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fabricnet:", err)
	os.Exit(1)
}
