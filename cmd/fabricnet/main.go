// Command fabricnet runs a live in-process Fabric/FabricCRDT network — the
// paper's 3-org × 2-peer topology with real goroutine peers, a batching
// orderer and ed25519 endorsements — drives a conflicting IoT workload
// through it, and reports Caliper-style metrics.
//
// Usage:
//
//	fabricnet                    # FabricCRDT, 500 txs at 200 tx/s
//	fabricnet -crdt=false        # stock Fabric (watch transactions fail)
//	fabricnet -txs 2000 -rate 400 -block 50 -clients 8
//	fabricnet -backend disk -datadir ./net-state    # persistent peers
//
// With -backend disk, rerunning with the same -datadir restores every
// peer's world state and resumes from the recorded block height.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"fabriccrdt"

	"fabriccrdt/internal/ledger"
)

func main() {
	var (
		enableCRDT = flag.Bool("crdt", true, "run FabricCRDT (false = stock Fabric)")
		totalTx    = flag.Int("txs", 500, "total transactions to submit")
		rate       = flag.Float64("rate", 200, "aggregate submission rate (tx/s)")
		blockSize  = flag.Int("block", 25, "orderer max transactions per block")
		clients    = flag.Int("clients", 4, "number of concurrent clients")
		device     = flag.String("device", "device-hot-0", "shared device key all transactions update")
		workers    = flag.Int("workers", 1, "commit-pipeline workers per peer (endorsement validation + CRDT merge)")
		shards     = flag.Int("shards", 1, "state database shards per peer (1 = single-lock map)")
		backend    = flag.String("backend", "", "state backend per peer: memory|sharded|disk (default: memory, or sharded when -shards > 1)")
		datadir    = flag.String("datadir", "", "data directory for -backend disk (one subdirectory per peer)")
		timings    = flag.Bool("timings", false, "print per-stage commit latencies per peer")
	)
	flag.Parse()

	switch *backend {
	case "", fabriccrdt.BackendMemory, fabriccrdt.BackendSharded:
		if *datadir != "" {
			fatal(fmt.Errorf("-datadir is only used with -backend disk; nothing would be persisted"))
		}
	case fabriccrdt.BackendDisk:
		if *datadir == "" {
			fatal(fmt.Errorf("-backend disk requires -datadir"))
		}
	default:
		fatal(fmt.Errorf("unknown -backend %q (want memory, sharded or disk)", *backend))
	}

	cfg := fabriccrdt.PaperTopology(*blockSize, *enableCRDT)
	cfg.Orderer.BatchTimeout = 2 * time.Second
	cfg.Committer = fabriccrdt.CommitterConfig{
		Workers:     *workers,
		StateShards: *shards,
		Backend:     *backend,
		DataDir:     *datadir,
	}
	net, err := fabriccrdt.NewNetwork(cfg)
	if err != nil {
		fatal(err)
	}
	if err := net.InstallChaincode("iot", iotChaincode(), "OR('Org1.member','Org2.member','Org3.member')"); err != nil {
		fatal(err)
	}
	net.Start()
	defer net.Stop()

	mode := "FabricCRDT"
	if !*enableCRDT {
		mode = "Fabric"
	}
	fmt.Printf("%s network: 3 orgs x 2 peers, block size %d, %d clients, %d txs at %.0f tx/s\n",
		mode, *blockSize, *clients, *totalTx, *rate)
	if h := net.Peers()[0].Height(); h > 0 {
		fmt.Printf("resumed from %s: persisted state at block height %d, new blocks continue from %d\n",
			*datadir, h, h+1)
	}

	orgs := []string{"Org1", "Org2", "Org3"}
	cls := make([]*fabriccrdt.Client, *clients)
	for i := range cls {
		org := orgs[i%len(orgs)]
		c, err := net.NewClient(org, fmt.Sprintf("caliper-%d", i), []string{org})
		if err != nil {
			fatal(err)
		}
		cls[i] = c
	}

	var (
		mu        sync.Mutex
		codes     = make(map[string]int)
		latencies []time.Duration
	)
	interTx := time.Duration(float64(time.Second) / *rate)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *totalTx; i++ {
		// Pace submissions at the configured aggregate rate.
		if sleep := time.Until(start.Add(time.Duration(i) * interTx)); sleep > 0 {
			time.Sleep(sleep)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := cls[i%len(cls)]
			t0 := time.Now()
			code, err := c.SubmitAndWait(60*time.Second, "iot",
				[]byte("record"), []byte(*device), []byte(fmt.Sprintf("%d", 10+i%30)))
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil && code == ledger.CodeNotValidated:
				codes["error: "+err.Error()]++
			default:
				codes[code.String()]++
				if code.Committed() {
					latencies = append(latencies, lat)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	net.Stop()
	if err := net.Err(); err != nil {
		fatal(err)
	}

	fmt.Printf("\n%d transactions in %v\n", *totalTx, elapsed.Round(time.Millisecond))
	keys := make([]string, 0, len(codes))
	for k := range codes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-28s %6d\n", k, codes[k])
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		fmt.Printf("successful throughput: %.1f tx/s\n", float64(len(latencies))/elapsed.Seconds())
		fmt.Printf("latency avg/p50/p95:   %v / %v / %v\n",
			(sum / time.Duration(len(latencies))).Round(time.Millisecond),
			latencies[len(latencies)/2].Round(time.Millisecond),
			latencies[len(latencies)*95/100].Round(time.Millisecond))
	}

	// Show the converged document on one peer.
	p := net.Peers()[0]
	if vv, ok := p.DB().Get(*device); ok {
		var doc map[string]any
		if err := json.Unmarshal(vv.Value, &doc); err == nil {
			if readings, ok := doc["tempReadings"].([]any); ok {
				fmt.Printf("converged document on %s: %d readings\n", p.Name(), len(readings))
			}
		}
	}
	for _, p := range net.Peers() {
		if err := p.Chain().Verify(); err != nil {
			fatal(fmt.Errorf("chain verification on %s: %w", p.Name(), err))
		}
	}
	fmt.Printf("all %d peer chains verified (height %d)\n", len(net.Peers()), net.Peers()[0].Chain().Height())

	if *timings {
		fmt.Println("\ncommit pipeline stage latencies (avg over committed blocks):")
		for _, p := range net.Peers() {
			fmt.Printf("  %-12s", p.Name())
			for _, s := range p.CommitTimings() {
				fmt.Printf(" %s=%v", s.Stage, s.Avg.Round(time.Microsecond))
			}
			fmt.Println()
		}
	}
}

// iotChaincode is the paper's evaluation chaincode (§7.1).
func iotChaincode() fabriccrdt.Chaincode {
	return fabriccrdt.ChaincodeFunc(func(stub fabriccrdt.ChaincodeStub) error {
		_, params := stub.Function()
		if len(params) != 2 {
			return fmt.Errorf("want [device reading], got %d params", len(params))
		}
		device, reading := params[0], params[1]
		if _, err := stub.GetState(device); err != nil {
			return err
		}
		delta, err := json.Marshal(map[string]any{
			"tempReadings": []any{map[string]any{"temperature": reading}},
		})
		if err != nil {
			return err
		}
		return stub.PutCRDT(device, delta)
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fabricnet:", err)
	os.Exit(1)
}
