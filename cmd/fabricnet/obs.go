// Observability plumbing shared by every role (and the in-process
// benchmark): -metrics-addr serves /metrics, /healthz, /readyz and
// /debug/pprof; -trace-out enables transaction tracing and dumps a Chrome
// trace-event JSON file on shutdown; -queue-warn tunes the handoff-queue
// high-water warnings.

package main

import (
	"fmt"
	"os"

	"fabriccrdt/internal/obs"
)

// obsRuntime is one process's observability state: the optional
// metrics/pprof server and the optional trace collector.
type obsRuntime struct {
	srv      *obs.Server
	tracer   *obs.Tracer
	traceOut string
}

// startObs wires the observability flags for one role. Call it BEFORE
// serving traffic: tracing must be enabled before the first transaction or
// its spans are silently dropped. The returned runtime is nil-safe.
func startObs(process, metricsAddr, traceOut string, queueWarn int, regs ...*obs.Registry) (*obsRuntime, error) {
	obs.SetQueueWarnDepth(queueWarn)
	rt := &obsRuntime{traceOut: traceOut}
	if traceOut != "" {
		rt.tracer = obs.EnableTracing(process)
	}
	if metricsAddr != "" {
		rt.srv = obs.NewServer(regs...)
		addr, err := rt.srv.Listen(metricsAddr)
		if err != nil {
			return nil, fmt.Errorf("metrics listener on %s: %w", metricsAddr, err)
		}
		fmt.Printf("fabricnet: %s metrics on %s\n", process, addr)
	}
	return rt, nil
}

// setReady flips /readyz to 200 — call once the role has resumed every
// channel and is serving.
func (rt *obsRuntime) setReady() {
	if rt != nil && rt.srv != nil {
		rt.srv.SetReady()
	}
}

// shutdown dumps the trace file (when tracing) and stops the metrics
// server. Call after the commit/deliver plumbing has drained so the last
// spans are recorded.
func (rt *obsRuntime) shutdown() {
	if rt == nil {
		return
	}
	if rt.tracer != nil && rt.traceOut != "" {
		if err := rt.tracer.WriteFile(rt.traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "fabricnet: writing trace file: %v\n", err)
		} else {
			fmt.Printf("fabricnet: wrote trace to %s\n", rt.traceOut)
		}
	}
	if rt.srv != nil {
		rt.srv.Close()
	}
}
