// Multi-process roles: -role orderer|peer|client split the in-process
// network into separate OS processes talking over the wire transport
// (internal/wire) — framed, checksummed TCP carrying the same four streams
// (Deliver, Broadcast, Endorse, Submit) the in-process Node serves.
//
//	fabricnet -role orderer -listen 127.0.0.1:7050 -block 10 -batch-timeout 500ms
//	fabricnet -role peer -name Org1.peer0 -org Org1 -listen 127.0.0.1:7051 \
//	    -connect 127.0.0.1:7050 -backend disk -datadir ./peer0
//	fabricnet -role client -org Org1 -connect 127.0.0.1:7051 -txs 20
//
// Organization trust crosses the process boundary through a deterministic
// CA seed (-ca-seed): every process derives the same Org1/Org2/Org3 roots
// from it (cryptoid.NewDeterministicCA), standing in for distributed cert
// files. Member keys stay random per process.
//
// The orderer role is in-memory: it chains after each channel's genesis
// block and retains every block it cuts, so peers (fresh or restarted from
// a -datadir checkpoint) catch up over the wire from any height. Restarting
// the ORDERER resets block numbering — pair a fresh orderer with fresh peer
// data directories. Restarting a PEER against a running orderer is the
// supported recovery path: it resumes from its durable checkpoint,
// reconnects, and the deliver loop fast-forwards it to the tail.
package main

import (
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"fabriccrdt/internal/client"
	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/endorse"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/obs"
	"fabriccrdt/internal/orderer"
	"fabriccrdt/internal/peer"
	"fabriccrdt/internal/transport"
	"fabriccrdt/internal/wire"
	"fabriccrdt/internal/workload"
)

// wirePolicy is the endorsement policy the multi-process demo installs —
// any one organization's endorsement suffices, so a client endorsing
// through a single remote peer produces committable transactions.
const wirePolicy = "OR('Org1.member','Org2.member','Org3.member')"

// demoOrgs are the organizations whose CA roots every process derives.
var demoOrgs = []string{"Org1", "Org2", "Org3"}

// roleOpts carries the flag values the role runners need.
type roleOpts struct {
	role         string
	listen       string
	connect      string
	name         string
	org          string
	caSeed       string
	channels     []string
	blockSize    int
	batchTimeout time.Duration
	enableCRDT   bool
	txs          int
	gen          *workload.IoTGenerator
	committer    peer.CommitterConfig
	metricsAddr  string
	traceOut     string
	queueWarn    int
}

// runRole dispatches to the named role runner.
func runRole(o roleOpts) error {
	switch o.role {
	case "orderer":
		return runOrderer(o)
	case "peer":
		return runPeer(o)
	case "client":
		return runClient(o)
	default:
		return fmt.Errorf("unknown -role %q (want orderer, peer or client)", o.role)
	}
}

// demoMSP derives the shared organization roots from the CA seed and
// returns the MSP plus each org's CA.
func demoMSP(seed string) (*cryptoid.MSP, map[string]*cryptoid.CA) {
	msp := cryptoid.NewMSP()
	cas := make(map[string]*cryptoid.CA, len(demoOrgs))
	for _, org := range demoOrgs {
		ca := cryptoid.NewDeterministicCA(org, seed)
		cas[org] = ca
		msp.AddOrg(org, ca.PublicKey())
	}
	return msp, cas
}

// awaitSignal blocks until SIGINT or SIGTERM.
func awaitSignal() os.Signal {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	return <-sig
}

// runOrderer serves the ordering side of every channel over one listener:
// each channel gets its own ordering service feeding an in-memory History,
// and the wire server exposes Deliver (the histories) and Broadcast (the
// services) to any number of peer and client processes.
func runOrderer(o roleOpts) error {
	if o.listen == "" {
		return fmt.Errorf("-role orderer requires -listen")
	}
	cfg := orderer.DefaultConfig(o.blockSize)
	cfg.BatchTimeout = o.batchTimeout

	histories := make(map[string]*transport.History, len(o.channels))
	broadcasts := make(map[string]transport.Broadcaster, len(o.channels))
	services := make([]*orderer.Service, 0, len(o.channels))
	reg := obs.NewRegistry()
	var feeders sync.WaitGroup
	for _, id := range o.channels {
		genesis, err := ledger.NewChain(id).Get(0)
		if err != nil {
			return err
		}
		svc := orderer.NewService(cfg, genesis)
		svc.SetLabel(id)
		services = append(services, svc)
		h := transport.NewHistory(1)
		h.SetLabel(id)
		histories[id] = h
		broadcasts[id] = svc
		reg.GaugeFunc(obs.MetricOrdererQueueDepth,
			func() float64 { return float64(svc.QueueDepth()) }, "channel", id)
		reg.GaugeFunc(obs.MetricHistoryLagBlocks,
			func() float64 { return float64(h.MaxLag()) }, "channel", id)
		reg.GaugeFunc(obs.MetricHistoryStreams,
			func() float64 { return float64(h.Streams()) }, "channel", id)
		sub := svc.Subscribe()
		feeders.Add(1)
		go func(id string, h *transport.History) {
			defer feeders.Done()
			defer h.Close()
			for b := range sub {
				if err := h.Append(b); err != nil {
					fmt.Fprintf(os.Stderr, "fabricnet: orderer %s history: %v\n", id, err)
					return
				}
			}
		}(id, h)
	}

	node := &transport.Node{
		NodeInfo:   transport.Info{Name: "orderer", Channels: o.channels},
		Histories:  histories,
		Broadcasts: broadcasts,
	}
	ob, err := startObs("orderer", o.metricsAddr, o.traceOut, o.queueWarn, obs.Default(), reg)
	if err != nil {
		return err
	}
	srv := wire.NewServer(node, node.NodeInfo)
	addr, err := srv.Listen(o.listen)
	if err != nil {
		return err
	}
	fmt.Printf("fabricnet: orderer listening on %s\n", addr)
	ob.setReady()

	s := awaitSignal()
	fmt.Printf("fabricnet: orderer shutting down (%v)\n", s)
	for _, svc := range services {
		svc.Stop()
	}
	feeders.Wait()
	srv.Close()
	ob.shutdown()
	fmt.Println("fabricnet: orderer shut down cleanly")
	return nil
}

// dialWithRetry dials the given wire endpoint, retrying while the remote
// process is still coming up.
func dialWithRetry(addr string, patience time.Duration) (*wire.Client, error) {
	deadline := time.Now().Add(patience)
	for {
		c, err := wire.Dial(addr, wire.ClientConfig{})
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dialing %s: %w", addr, err)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// runPeer runs one peer process: it commits blocks delivered from the
// orderer (-connect) through the standard deliver loop — resuming from its
// durable checkpoint when -backend disk reopens an existing -datadir — and
// serves its own wire endpoint (-listen): Endorse, a gateway Submit
// (broadcast to the orderer + wait for local commit), Broadcast forwarded
// to the orderer, and Deliver backed by its own chain, so other processes
// can sync the full history from this peer.
func runPeer(o roleOpts) error {
	if o.listen == "" || o.connect == "" {
		return fmt.Errorf("-role peer requires -listen and -connect (orderer address)")
	}
	name := o.name
	if name == "" {
		name = o.org + ".peer0"
	}
	msp, cas := demoMSP(o.caSeed)
	ca, ok := cas[o.org]
	if !ok {
		return fmt.Errorf("-org %q is not a demo organization %v", o.org, demoOrgs)
	}
	signer, err := ca.Issue(name)
	if err != nil {
		return err
	}
	p, err := peer.New(peer.Config{
		Name:       name,
		MSPID:      o.org,
		Channels:   o.channels,
		EnableCRDT: o.enableCRDT,
		Committer:  o.committer,
	}, signer, msp)
	if err != nil {
		return err
	}
	defer p.Close()
	p.InstallChaincode("iot", o.gen.Chaincode(), endorse.MustParse(wirePolicy))
	for _, id := range o.channels {
		if h, err := p.HeightOn(id); err == nil && h > 0 {
			fmt.Printf("fabricnet: %s resumed %s at height %d\n", name, id, h)
		}
	}

	oc, err := dialWithRetry(o.connect, 30*time.Second)
	if err != nil {
		return err
	}
	defer oc.Close()

	// The peer's own endpoint: chain-backed histories (a restarted peer
	// with the block store serves its FULL history), endorsement, a
	// gateway Submit, and Broadcast relayed to the orderer.
	histories := make(map[string]*transport.History, len(o.channels))
	broadcasts := make(map[string]transport.Broadcaster, len(o.channels))
	reg := obs.NewRegistry()
	for _, id := range o.channels {
		chain, err := p.ChainOn(id)
		if err != nil {
			return err
		}
		h := transport.NewSourceHistory(chain)
		h.SetLabel(id)
		histories[id] = h
		broadcasts[id] = oc
		reg.GaugeFunc(obs.MetricHistoryLagBlocks,
			func() float64 { return float64(h.MaxLag()) }, "channel", id)
		reg.GaugeFunc(obs.MetricHistoryStreams,
			func() float64 { return float64(h.Streams()) }, "channel", id)
	}
	gw := transport.NewGateway(p, oc, 30*time.Second)
	node := &transport.Node{
		NodeInfo:   transport.Info{Name: name, MSPID: o.org, Channels: o.channels},
		Histories:  histories,
		Broadcasts: broadcasts,
		Endorser:   p,
		Submitter:  gw,
	}
	ob, err := startObs(name, o.metricsAddr, o.traceOut, o.queueWarn, obs.Default(), p.Metrics(), reg)
	if err != nil {
		return err
	}
	srv := wire.NewServer(node, node.NodeInfo)
	addr, err := srv.Listen(o.listen)
	if err != nil {
		return err
	}
	fmt.Printf("fabricnet: peer %s listening on %s\n", name, addr)
	// Every channel resumed (peer.New restores the durable checkpoints) and
	// both listeners are up: the peer is ready.
	ob.setReady()

	// Publish each committed block to the served histories and report it —
	// the line the multi-process harness (and a human in a terminal) uses
	// to watch the peer catch up.
	events := p.Events()
	reporterDone := make(chan struct{})
	go func() {
		defer close(reporterDone)
		last := make(map[string]uint64)
		for ev := range events {
			if h, ok := histories[ev.ChannelID]; ok {
				h.Advance(ev.BlockNum)
			}
			if ev.BlockNum > last[ev.ChannelID] {
				last[ev.ChannelID] = ev.BlockNum
				fmt.Printf("fabricnet: %s committed block %d on %s\n", name, ev.BlockNum, ev.ChannelID)
			}
		}
	}()

	// One deliver loop per channel; retryable transport failures reconnect
	// forever (MaxRetries 0), fatal errors bring the process down loudly.
	stop := make(chan struct{})
	fatalErr := make(chan error, len(o.channels))
	var loops sync.WaitGroup
	for _, id := range o.channels {
		loops.Add(1)
		go func(id string) {
			defer loops.Done()
			err := transport.DeliverToPeer(oc, p, transport.DeliverConfig{
				ChannelID: id,
				Depth:     o.committer.Pipeline,
				OnRetry: func(err error) {
					fmt.Printf("fabricnet: %s deliver retry on %s: %v\n", name, id, err)
				},
			}, stop)
			if err != nil {
				fatalErr <- err
			}
		}(id)
	}

	var runErr error
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("fabricnet: peer %s shutting down (%v)\n", name, s)
	case runErr = <-fatalErr:
	}
	close(stop)
	oc.Close() // unblocks deliver streams and in-flight gateway broadcasts
	loops.Wait()
	srv.Close()
	p.CloseEvents()
	<-reporterDone
	ob.shutdown() // after the pipelines drain, so the last spans are in the dump
	if err := p.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		return runErr
	}
	fmt.Printf("fabricnet: peer %s shut down cleanly\n", name)
	return nil
}

// remoteEndorser adapts a wire client to the SDK's Endorser interface: the
// handshake Info supplies the remote peer's identity for policy purposes.
type remoteEndorser struct{ c *wire.Client }

func (r remoteEndorser) Endorse(prop peer.Proposal) (peer.ProposalResponse, error) {
	return r.c.Endorse(prop)
}
func (r remoteEndorser) MSPID() string { return r.c.Info().MSPID }
func (r remoteEndorser) Name() string  { return r.c.Info().Name }

// runClient submits -txs workload transactions through remote peers: every
// -connect address endorses each proposal (responses are cross-checked by
// the SDK), and the first address's gateway Submit stream carries the
// envelope to ordering and returns the commit event.
func runClient(o roleOpts) error {
	if o.connect == "" {
		return fmt.Errorf("-role client requires -connect (comma-separated peer addresses)")
	}
	name := o.name
	if name == "" {
		name = "wire-client"
	}
	_, cas := demoMSP(o.caSeed)
	ca, ok := cas[o.org]
	if !ok {
		return fmt.Errorf("-org %q is not a demo organization %v", o.org, demoOrgs)
	}
	signer, err := ca.Issue(name)
	if err != nil {
		return err
	}
	ob, err := startObs(name, o.metricsAddr, o.traceOut, o.queueWarn, obs.Default())
	if err != nil {
		return err
	}
	ob.setReady()
	defer ob.shutdown()

	var (
		endorsers []client.Endorser
		gateway   *wire.Client
	)
	for _, addr := range strings.Split(o.connect, ",") {
		wc, err := dialWithRetry(strings.TrimSpace(addr), 30*time.Second)
		if err != nil {
			return err
		}
		defer wc.Close()
		endorsers = append(endorsers, remoteEndorser{c: wc})
		if gateway == nil {
			gateway = wc
		}
	}

	// One SDK client per channel (a client binds one channel); the
	// workload generator's channel mix routes each transaction.
	clients := make(map[string]*client.Client, len(o.channels))
	for _, id := range o.channels {
		clients[id] = client.New(signer, id, endorsers, nil)
	}

	var (
		mu        sync.Mutex
		codes     = make(map[string]int)
		heights   = make(map[string]uint64)
		committed int
		failures  int
		firstErr  error
	)
	var wg sync.WaitGroup
	for i := 0; i < o.txs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch := o.gen.ChannelFor(i)
			if ch == "" {
				ch = o.channels[0]
			}
			tx, err := clients[ch].Prepare("iot", workload.SpecArgs(i)...)
			var ev peer.CommitEvent
			if err == nil {
				ev, err = gateway.Submit(tx)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failures++
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			codes[ev.Code.String()]++
			if ev.Code.Committed() {
				committed++
			}
			if ev.BlockNum > heights[ch] {
				heights[ch] = ev.BlockNum
			}
		}(i)
	}
	wg.Wait()

	for ch, h := range heights {
		fmt.Printf("fabricnet: client saw height %d on %s\n", h, ch)
	}
	fmt.Printf("fabricnet: client done: %d/%d committed\n", committed, o.txs)
	if firstErr != nil {
		return fmt.Errorf("client: %d submissions failed, first: %w", failures, firstErr)
	}
	if committed == 0 && o.txs > 0 {
		return fmt.Errorf("client: no transaction committed")
	}
	return nil
}
