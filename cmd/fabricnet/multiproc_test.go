// Multi-process end-to-end tests: the fabricnet binary is built once and
// spawned as real OS processes — orderer, peers, client — talking over the
// wire transport on loopback TCP. This is the ISSUE 7 acceptance path: the
// demo commits blocks over real sockets, and a SIGKILLed peer restarted
// against its data directory recovers to byte-identical world state with
// the peer that never died.
package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"fabriccrdt/internal/cryptoid"
	"fabriccrdt/internal/obs"
	"fabriccrdt/internal/peer"
)

// binPath is the fabricnet binary TestMain builds for every test here.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fabricnet-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "fabricnet")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building fabricnet: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// proc is one spawned fabricnet process with its combined output captured
// for pattern waits.
type proc struct {
	t    *testing.T
	name string
	cmd  *exec.Cmd

	mu  sync.Mutex
	out bytes.Buffer

	exited  chan struct{}
	exitErr error
}

func (p *proc) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.Write(b)
}

func (p *proc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

// startProc spawns the fabricnet binary with the given arguments. The
// process is hard-killed at test cleanup if still running.
func startProc(t *testing.T, name string, args ...string) *proc {
	t.Helper()
	p := &proc{t: t, name: name, exited: make(chan struct{})}
	cmd := exec.Command(binPath, args...)
	cmd.Stdout = p
	cmd.Stderr = p
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	p.cmd = cmd
	go func() {
		p.exitErr = cmd.Wait()
		close(p.exited)
	}()
	t.Cleanup(func() {
		select {
		case <-p.exited:
		default:
			p.cmd.Process.Kill()
			<-p.exited
		}
	})
	return p
}

// waitFor polls the process output until the pattern matches, returning the
// submatches.
func (p *proc) waitFor(pattern string, timeout time.Duration) []string {
	p.t.Helper()
	re := regexp.MustCompile(pattern)
	deadline := time.Now().Add(timeout)
	for {
		if m := re.FindStringSubmatch(p.output()); m != nil {
			return m
		}
		if time.Now().After(deadline) {
			p.t.Fatalf("%s: timed out waiting for %q; output so far:\n%s", p.name, pattern, p.output())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// term sends SIGTERM and asserts a clean (exit 0) shutdown.
func (p *proc) term(timeout time.Duration) {
	p.t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		p.t.Fatalf("signaling %s: %v", p.name, err)
	}
	select {
	case <-p.exited:
		if p.exitErr != nil {
			p.t.Fatalf("%s exited with %v; output:\n%s", p.name, p.exitErr, p.output())
		}
	case <-time.After(timeout):
		p.t.Fatalf("%s did not exit after SIGTERM; output:\n%s", p.name, p.output())
	}
}

// kill SIGKILLs the process mid-flight (no clean shutdown).
func (p *proc) kill() {
	p.t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		p.t.Fatalf("killing %s: %v", p.name, err)
	}
	<-p.exited
}

// waitExit waits for the process to end on its own and asserts exit 0.
func (p *proc) waitExit(timeout time.Duration) {
	p.t.Helper()
	select {
	case <-p.exited:
		if p.exitErr != nil {
			p.t.Fatalf("%s exited with %v; output:\n%s", p.name, p.exitErr, p.output())
		}
	case <-time.After(timeout):
		p.t.Fatalf("%s still running; output:\n%s", p.name, p.output())
	}
}

const (
	listenRE  = `listening on (\S+)`
	heightRE  = `client saw height (\d+) on channel1`
	metricsRE = `metrics on (\S+)`
)

// startOrderer spawns the ordering process and returns its address.
func startOrderer(t *testing.T, extra ...string) (*proc, string) {
	t.Helper()
	args := append([]string{
		"-role", "orderer", "-listen", "127.0.0.1:0",
		"-channels", "channel1", "-block", "5", "-batch-timeout", "150ms"}, extra...)
	p := startProc(t, "orderer", args...)
	return p, p.waitFor(listenRE, 15*time.Second)[1]
}

// startPeer spawns one peer process and returns its address.
func startPeer(t *testing.T, name, org, ordAddr string, extra ...string) (*proc, string) {
	t.Helper()
	args := append([]string{
		"-role", "peer", "-name", name, "-org", org,
		"-listen", "127.0.0.1:0", "-connect", ordAddr,
		"-channels", "channel1"}, extra...)
	p := startProc(t, name, args...)
	return p, p.waitFor(listenRE, 15*time.Second)[1]
}

// clientSubmit submits txs transactions through the given peer addresses
// and returns the final block height the client observed.
func clientSubmit(t *testing.T, peerAddrs string, txs int, extra ...string) uint64 {
	t.Helper()
	args := append([]string{
		"-role", "client", "-org", "Org1", "-connect", peerAddrs,
		"-channels", "channel1", "-txs", strconv.Itoa(txs)}, extra...)
	cl := startProc(t, "client", args...)
	cl.waitExit(60 * time.Second)
	m := cl.waitFor(heightRE, time.Second)
	h, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil || h == 0 {
		t.Fatalf("client reported height %q (err %v); output:\n%s", m[1], err, cl.output())
	}
	return h
}

// TestMultiProcessSmoke is the CI smoke: spawn orderer + peer binaries,
// submit transactions over real sockets, assert the peer commits them,
// scrape the peer's live /metrics endpoint, and shut everything down
// cleanly.
func TestMultiProcessSmoke(t *testing.T) {
	ord, ordAddr := startOrderer(t)
	pr, peerAddr := startPeer(t, "Org1.peer0", "Org1", ordAddr, "-metrics-addr", "127.0.0.1:0")
	metricsAddr := pr.waitFor(metricsRE, 15*time.Second)[1]

	h := clientSubmit(t, peerAddr, 12)
	pr.waitFor(fmt.Sprintf(`committed block %d on channel1`, h), 15*time.Second)

	// Scrape the live peer: the exposition must parse, and the commit-path
	// histograms and wire counters must be present with real samples.
	body := httpGet(t, "http://"+metricsAddr+"/metrics")
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("peer /metrics is malformed: %v\n%s", err, body)
	}
	for _, want := range []string{
		obs.MetricCommitStageSeconds + "_bucket",
		obs.MetricPeerBlockHeight,
		obs.MetricWireFrames,
		obs.MetricHistoryLagBlocks,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("peer /metrics missing %q:\n%s", want, body)
		}
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		httpGet(t, "http://"+metricsAddr+path)
	}

	pr.term(15 * time.Second)
	ord.term(15 * time.Second)
}

// httpGet fetches the URL and fails the test on any error or non-200.
func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %s", url, resp.StatusCode, body)
	}
	return body
}

// readTrace parses one process's -trace-out dump back into spans.
func readTrace(t *testing.T, path string) []obs.Span {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading trace file: %v", err)
	}
	spans, err := obs.ParseChromeTrace(data)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	return spans
}

// TestMultiProcessTracePropagation is the ISSUE 8 tracing acceptance test:
// a trace ID minted by the client process must ride the proposal, the
// transaction envelope, and the block across the wire so that the client,
// peer, and orderer processes each record spans under the SAME trace ID —
// and the spans must nest correctly (the peer's gateway.submit encloses its
// peer.commit; clocks are only compared within one process).
func TestMultiProcessTracePropagation(t *testing.T) {
	dir := t.TempDir()
	ordTrace := filepath.Join(dir, "orderer.json")
	peerTrace := filepath.Join(dir, "peer.json")
	clientTrace := filepath.Join(dir, "client.json")

	ord, ordAddr := startOrderer(t, "-trace-out", ordTrace)
	pr, peerAddr := startPeer(t, "Org1.peer0", "Org1", ordAddr, "-trace-out", peerTrace)

	const txs = 5
	h := clientSubmit(t, peerAddr, txs, "-trace-out", clientTrace)
	pr.waitFor(fmt.Sprintf(`committed block %d on channel1`, h), 15*time.Second)

	// Traces are dumped at shutdown; the client already exited inside
	// clientSubmit, the peer and orderer flush on SIGTERM.
	pr.term(15 * time.Second)
	ord.term(15 * time.Second)

	spans := readTrace(t, clientTrace)
	spans = append(spans, readTrace(t, peerTrace)...)
	spans = append(spans, readTrace(t, ordTrace)...)

	byTrace := make(map[string][]obs.Span)
	for _, sp := range spans {
		if sp.TraceID != "" {
			byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
		}
	}
	if len(byTrace) != txs {
		t.Fatalf("got %d distinct trace IDs, want %d (one per transaction)", len(byTrace), txs)
	}

	for id, trace := range byTrace {
		procs := make(map[string]bool)
		named := make(map[string]obs.Span)
		for _, sp := range trace {
			procs[sp.Process] = true
			named[sp.Name] = sp
		}
		if len(procs) < 3 {
			t.Fatalf("trace %s spans only processes %v, want client + peer + orderer", id, procs)
		}
		for span, proc := range map[string]string{
			"client.prepare": "wire-client",
			"peer.endorse":   "Org1.peer0",
			"gateway.submit": "Org1.peer0",
			"peer.commit":    "Org1.peer0",
			"orderer.order":  "orderer",
		} {
			sp, ok := named[span]
			if !ok {
				t.Fatalf("trace %s has no %s span; got %+v", id, span, trace)
			}
			if sp.Process != proc {
				t.Fatalf("trace %s: %s recorded by process %q, want %q", id, span, sp.Process, proc)
			}
		}
		// Nesting within the peer process: the gateway holds the Submit
		// stream open until the commit event, so its span must enclose the
		// commit span.
		gw, cm := named["gateway.submit"], named["peer.commit"]
		if gw.Start.After(cm.Start) || gw.Start.Add(gw.Dur).Before(cm.Start.Add(cm.Dur)) {
			t.Fatalf("trace %s: gateway.submit [%v +%v] does not enclose peer.commit [%v +%v]",
				id, gw.Start, gw.Dur, cm.Start, cm.Dur)
		}
	}
}

// TestMultiProcessKillRestartStateIdentical is the fault-injection
// integration test (ISSUE 7 satellite): a peer SIGKILLed mid-deployment and
// restarted over the same data directory must resume from its durable
// checkpoint, catch up over the wire, and end with world state
// byte-identical to the peer that was never interrupted.
func TestMultiProcessKillRestartStateIdentical(t *testing.T) {
	dirA := filepath.Join(t.TempDir(), "peerA")
	dirB := filepath.Join(t.TempDir(), "peerB")
	ord, ordAddr := startOrderer(t)
	peerA, addrA := startPeer(t, "Org1.peer0", "Org1", ordAddr, "-backend", "disk", "-datadir", dirA)
	peerB, _ := startPeer(t, "Org2.peer0", "Org2", ordAddr, "-backend", "disk", "-datadir", dirB)

	// Round 1: both peers commit.
	h1 := clientSubmit(t, addrA, 10)
	peerA.waitFor(fmt.Sprintf(`committed block %d on channel1`, h1), 15*time.Second)
	peerB.waitFor(fmt.Sprintf(`committed block %d on channel1`, h1), 15*time.Second)

	// Kill peer B without ceremony and keep committing while it is down.
	peerB.kill()
	h2 := clientSubmit(t, addrA, 10)
	if h2 <= h1 {
		t.Fatalf("no progress while peer was down: height %d then %d", h1, h2)
	}

	// Restart B over the same data directory: it must resume from its
	// checkpoint (not block 1) and catch up to the tail over the wire.
	peerB2, _ := startPeer(t, "Org2.peer0", "Org2", ordAddr, "-backend", "disk", "-datadir", dirB)
	peerB2.waitFor(`resumed channel1 at height (\d+)`, 15*time.Second)
	peerB2.waitFor(fmt.Sprintf(`committed block %d on channel1`, h2), 20*time.Second)

	// Post-restart liveness: new blocks still reach the restarted peer.
	h3 := clientSubmit(t, addrA, 5)
	peerB2.waitFor(fmt.Sprintf(`committed block %d on channel1`, h3), 20*time.Second)

	peerA.term(15 * time.Second)
	peerB2.term(15 * time.Second)
	ord.term(15 * time.Second)

	// Reopen both data directories in-process and compare: equal heights,
	// byte-identical world state (the interrupted peer vs the one that
	// never died).
	a := reopenPeer(t, "Org1.peer0", "Org1", dirA)
	defer a.Close()
	b := reopenPeer(t, "Org2.peer0", "Org2", dirB)
	defer b.Close()
	ha, err := a.HeightOn("channel1")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.HeightOn("channel1")
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb || ha < h3 {
		t.Fatalf("reopened heights diverge: uninterrupted %d, killed-and-restarted %d (want >= %d)", ha, hb, h3)
	}
	if !reflect.DeepEqual(a.DB().GetRange("", ""), b.DB().GetRange("", "")) {
		t.Fatal("killed-and-restarted peer's world state differs from the uninterrupted peer")
	}
}

// reopenPeer opens a finished peer process's data directory in-process so
// the test can read its recovered world state.
func reopenPeer(t *testing.T, name, org, dir string) *peer.Peer {
	t.Helper()
	msp := cryptoid.NewMSP()
	for _, o := range demoOrgs {
		msp.AddOrg(o, cryptoid.NewDeterministicCA(o, "fabricnet-demo").PublicKey())
	}
	signer, err := cryptoid.NewDeterministicCA(org, "fabricnet-demo").Issue(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := peer.New(peer.Config{
		Name: name, MSPID: org, Channels: []string{"channel1"}, EnableCRDT: true,
		Committer: peer.CommitterConfig{Backend: peer.BackendDisk, DataDir: dir},
	}, signer, msp)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
