// Package fabriccrdt is a from-scratch Go implementation of FabricCRDT
// (Nasirifard, Mayer, Jacobsen — ACM Middleware 2019): a permissioned
// blockchain in the style of Hyperledger Fabric v1.4 whose peers merge
// conflicting transactions with a JSON CRDT instead of failing them under
// MVCC validation.
//
// The package is a facade over the implementation packages: it exposes
// everything a downstream application needs — network assembly, chaincode
// authoring, client submission, the JSON CRDT document API and the classic
// CRDT library — without reaching into internal/ paths.
//
// Quick start:
//
//	net, _ := fabriccrdt.NewNetwork(fabriccrdt.PaperTopology(25, true))
//	_ = net.InstallChaincode("iot", myChaincode, "OR('Org1.member')")
//	net.Start()
//	defer net.Stop()
//	cli, _ := net.NewClient("Org1", "app", []string{"Org1"})
//	code, err := cli.SubmitAndWait(5*time.Second, "iot", []byte("record"), ...)
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package fabriccrdt

import (
	"fabriccrdt/internal/chaincode"
	"fabriccrdt/internal/channel"
	"fabriccrdt/internal/client"
	"fabriccrdt/internal/core"
	"fabriccrdt/internal/crdt"
	"fabriccrdt/internal/fabricnet"
	"fabriccrdt/internal/jsoncrdt"
	"fabriccrdt/internal/ledger"
	"fabriccrdt/internal/metrics"
	"fabriccrdt/internal/orderer"
	"fabriccrdt/internal/peer"
	"fabriccrdt/internal/statedb"
)

// Network assembly.
type (
	// Network is a running in-process Fabric/FabricCRDT network.
	Network = fabricnet.Network
	// NetworkConfig describes a network's organizations, orderer and mode.
	NetworkConfig = fabricnet.Config
	// OrgConfig describes one organization.
	OrgConfig = fabricnet.OrgConfig
	// OrdererConfig mirrors Fabric's BatchSize/BatchTimeout settings.
	OrdererConfig = orderer.Config
	// EngineOptions tunes the CRDT merge engine.
	EngineOptions = core.Options
	// CommitterConfig tunes every peer's staged commit pipeline: the
	// endorsement-validation worker pool, the async cross-block pipeline
	// depth (Pipeline: how many delivered blocks are decoded and
	// endorsement-validated ahead of the serialized commit stage; 0 =
	// synchronous), the world-state backend (Backend/StateShards/
	// DataDir/SyncEveryApply/StateCacheBytes — see the Backend* constants)
	// and the durable block store (PersistBlocks — see the PersistBlocks*
	// constants; on by default with the durable backends BackendDisk and
	// BackendLSM) and the intra-block finalize scheduler
	// (FinalizeWorkers: >1 validates non-conflicting transactions of one
	// block concurrently along a dependency-graph wavefront schedule, with
	// the CRDT merge running beside MVCC validation; 1 = serial; 0 inherits
	// Workers). One configuration applies per channel: a zero Workers is
	// resolved adaptively (the host's CPUs divided across the network's
	// channels); any Workers, Pipeline or FinalizeWorkers setting produces
	// identical commit results.
	CommitterConfig = peer.CommitterConfig
	// CommitStageSummary aggregates one commit-pipeline stage's latencies,
	// as returned by Peer.CommitTimings.
	CommitStageSummary = metrics.StageSummary
	// CommitAggregate is a peer's skew-free commit-latency rollup
	// (Peer.CommitAggregate): Wall is elapsed pipeline time, CPU sums the
	// work done inside it — concurrent stages make CPU exceed Wall.
	CommitAggregate = peer.CommitAggregate
	// SchedulerCounter is one finalize-scheduler statistic, as returned by
	// Peer.SchedulerCounters (scheduled blocks/transactions, conflict
	// groups, dependency edges, wavefront counts).
	SchedulerCounter = metrics.Counter
)

// World-state backend names for CommitterConfig.Backend.
const (
	// BackendMemory is the single-lock in-memory map (the default).
	BackendMemory = peer.BackendMemory
	// BackendSharded spreads keys over CommitterConfig.StateShards
	// independently locked in-memory shards.
	BackendSharded = peer.BackendSharded
	// BackendDisk persists the world state under CommitterConfig.DataDir
	// (append-only log + snapshot): peers restarted over the same
	// directory resume from the recorded block height instead of
	// replaying the chain.
	BackendDisk = peer.BackendDisk
	// BackendLSM persists the world state under CommitterConfig.DataDir as
	// a log-structured store (memtable + sorted runs + bloom filters +
	// block cache; docs/STATEDB.md). Resumes like BackendDisk, but opening
	// never rebuilds a full in-memory index, so world state can outgrow
	// RAM. CommitterConfig.StateCacheBytes bounds its block cache.
	BackendLSM = peer.BackendLSM
)

// Block-body persistence modes for CommitterConfig.PersistBlocks (durable
// backends only; see docs/PERSISTENCE.md). With the block store on — the
// durable backends' default — the ledger is the recovery root: a restarted
// peer serves its full history to syncing peers and Peer.RebuildState
// replays the persisted chain into a byte-identical world state.
const (
	// PersistBlocksAuto (the zero value) enables the block store whenever
	// the backend is durable (BackendDisk or BackendLSM); a data directory
	// from before block persistence is adopted as-is (checkpoint-only
	// resume) instead of refused.
	PersistBlocksAuto = peer.PersistBlocksAuto
	// PersistBlocksOn requires the block store (durable backends only).
	PersistBlocksOn = peer.PersistBlocksOn
	// PersistBlocksOff keeps the state-checkpoint-only durability: a
	// restarted peer resumes committing but cannot serve pre-restart
	// blocks or rebuild its state from the chain.
	PersistBlocksOff = peer.PersistBlocksOff
)

// NewNetwork builds a network: per-org CAs, peers, and one ordering
// service per configured channel (NetworkConfig.Channels; the default is
// the single DefaultChannel). Call Start to launch delivery, Stop to shut
// down. Channels commit fully in parallel — aggregate throughput scales
// with the channel count (DESIGN.md §6).
func NewNetwork(cfg NetworkConfig) (*Network, error) { return fabricnet.New(cfg) }

// PaperTopology returns the paper's evaluation topology (§7.2): three
// organizations with two peers each, one orderer, one channel, with the
// given maximum block size; enableCRDT selects FabricCRDT vs stock Fabric.
// Set NetworkConfig.Channels on the result to shard the network over
// several channels.
func PaperTopology(maxBlockTxs int, enableCRDT bool) NetworkConfig {
	return fabricnet.PaperConfig(maxBlockTxs, enableCRDT)
}

// DefaultChannel is the channel ID used when a configuration names none.
const DefaultChannel = channel.DefaultChannel

// ValidateChannels checks a channel list the way NewNetwork will: it must
// be non-empty, names must be non-empty, filesystem-safe and unique.
// CLIs use it to reject a bad channel flag with a friendly error before
// assembling anything.
func ValidateChannels(ids []string) error { return channel.ValidateIDs(ids) }

// DefaultOrdererConfig returns the paper's orderer settings (128 MB byte
// caps, 2 s batch timeout) with the given block size.
func DefaultOrdererConfig(maxMessages int) OrdererConfig {
	return orderer.DefaultConfig(maxMessages)
}

// Chaincode authoring.
type (
	// Chaincode is a smart contract invoked during endorsement.
	Chaincode = chaincode.Chaincode
	// ChaincodeStub is the shim API: GetState/PutState/PutCRDT/DelState.
	ChaincodeStub = chaincode.Stub
	// ChaincodeFunc adapts a plain function to the Chaincode interface.
	ChaincodeFunc = chaincode.Func
)

// Clients and peers.
type (
	// Client drives the execute-order-validate lifecycle for applications
	// on its bound channel.
	Client = client.Client
	// MultiClient bundles one Client per channel: submit/query on a named
	// channel, or round-robin independent transactions across all of them
	// (Network.NewMultiClient builds one).
	MultiClient = client.MultiClient
	// Peer is one peer node (endorser + committer), joined to one or more
	// channels.
	Peer = peer.Peer
	// CommitEvent notifies listeners of a transaction's commit outcome on
	// one channel.
	CommitEvent = peer.CommitEvent
)

// Ledger types.
type (
	// ValidationCode is a transaction's commit outcome.
	ValidationCode = ledger.ValidationCode
	// Block is an ordered batch of transactions.
	Block = ledger.Block
	// Transaction is a client-assembled envelope.
	Transaction = ledger.Transaction
	// WorldState is a peer's versioned key-value state database.
	WorldState = statedb.DB
)

// Validation codes (see ValidationCode.String for wire names).
const (
	CodeValid              = ledger.CodeValid
	CodeMVCCConflict       = ledger.CodeMVCCConflict
	CodeEndorsementFailure = ledger.CodeEndorsementFailure
	CodeBadSignature       = ledger.CodeBadSignature
	CodeDuplicate          = ledger.CodeDuplicate
	CodeCRDTMerged         = ledger.CodeCRDTMerged
	CodeInvalidCRDT        = ledger.CodeInvalidCRDT
	CodeWrongChannel       = ledger.CodeWrongChannel
)

// JSON CRDT document API (Kleppmann & Beresford semantics).
type (
	// JSONDoc is a replicated JSON document; see NewJSONDoc.
	JSONDoc = jsoncrdt.Doc
	// JSONOp is one replicable document operation.
	JSONOp = jsoncrdt.Operation
	// JSONDocOption configures a JSONDoc.
	JSONDocOption = jsoncrdt.Option
)

// NewJSONDoc returns an empty replicated JSON document stamped with the
// given replica identifier.
func NewJSONDoc(replica string, opts ...JSONDocOption) *JSONDoc {
	return jsoncrdt.NewDoc(replica, opts...)
}

// WithOpLog makes a JSONDoc retain locally generated operations for
// replication via TakeOps/ApplyOp.
func WithOpLog() JSONDocOption { return jsoncrdt.WithOpLog() }

// Container sentinels for JSONDoc.Assign/InsertAt/Append.
const (
	EmptyMap  = jsoncrdt.EmptyMap
	EmptyList = jsoncrdt.EmptyList
)

// LoadMergedDoc returns the persisted CRDT document (with merge metadata)
// behind a ledger key on a FabricCRDT peer's default channel, or nil if
// the key was never CRDT-written. The plain converged value is the peer's
// world-state value.
func LoadMergedDoc(p *Peer, key string) (*JSONDoc, error) {
	return core.LoadDoc(p.DB(), key)
}

// LoadMergedDocOn is LoadMergedDoc against an explicit channel — keys are
// channel-local state, so the same key can hold a different document per
// channel.
func LoadMergedDocOn(p *Peer, channelID, key string) (*JSONDoc, error) {
	db, err := p.DBOn(channelID)
	if err != nil {
		return nil, err
	}
	return core.LoadDoc(db, key)
}

// Classic state-based CRDT library (the paper's future-work datatypes).
type (
	// CRDT is a state-based replicated datatype.
	CRDT = crdt.CRDT
	// CRDTRegistry maps datatype names to factories.
	CRDTRegistry = crdt.Registry
	// GCounter is a grow-only counter.
	GCounter = crdt.GCounter
	// PNCounter supports increments and decrements.
	PNCounter = crdt.PNCounter
	// GSet is a grow-only set.
	GSet = crdt.GSet
	// ORSet is an observed-remove (add-wins) set.
	ORSet = crdt.ORSet
	// LWWRegister is a last-writer-wins register.
	LWWRegister = crdt.LWWRegister
	// LWWMap is a last-writer-wins map.
	LWWMap = crdt.LWWMap
	// Graph is an add-wins directed graph.
	Graph = crdt.Graph
)

// NewCRDTRegistry returns a registry preloaded with every built-in
// datatype.
func NewCRDTRegistry() *CRDTRegistry { return crdt.NewRegistry() }

// LoadTypedCRDT returns the accumulated classic-CRDT state behind a ledger
// key on a FabricCRDT peer's default channel (written via
// ChaincodeStub.PutTypedCRDT), or nil if the key was never
// typed-CRDT-written. The plain value (counter total, set members, ...) is
// the peer's world-state value.
func LoadTypedCRDT(p *Peer, key string) (CRDT, error) {
	return core.LoadTypedCRDT(p.DB(), key)
}

// LoadTypedCRDTOn is LoadTypedCRDT against an explicit channel.
func LoadTypedCRDTOn(p *Peer, channelID, key string) (CRDT, error) {
	db, err := p.DBOn(channelID)
	if err != nil {
		return nil, err
	}
	return core.LoadTypedCRDT(db, key)
}
