// Quickstart: bring up a FabricCRDT network, install a chaincode, submit
// two CONFLICTING transactions concurrently, and watch both commit with
// their updates merged — the paper's Listing 1 → Listing 2 example, live.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	"fabriccrdt"
)

func main() {
	// A FabricCRDT network in the paper's topology: 3 orgs × 2 peers,
	// one orderer, one channel, 25 transactions per block.
	net, err := fabriccrdt.NewNetwork(fabriccrdt.PaperTopology(25, true))
	if err != nil {
		log.Fatal(err)
	}
	// Shorten the batch timeout so the demo commits promptly.
	cfg := fabriccrdt.PaperTopology(25, true)
	cfg.Orderer.BatchTimeout = 200 * time.Millisecond
	if net, err = fabriccrdt.NewNetwork(cfg); err != nil {
		log.Fatal(err)
	}

	// The chaincode: read the device document, append one temperature
	// reading as a CRDT delta. PutCRDT is the one-line difference from a
	// standard Fabric chaincode.
	sensor := fabriccrdt.ChaincodeFunc(func(stub fabriccrdt.ChaincodeStub) error {
		_, params := stub.Function()
		device, temperature := params[0], params[1]
		if _, err := stub.GetState(device); err != nil {
			return err
		}
		delta, err := json.Marshal(map[string]any{
			"tempReadings": []any{map[string]any{"temperature": temperature}},
		})
		if err != nil {
			return err
		}
		return stub.PutCRDT(device, delta)
	})
	if err := net.InstallChaincode("sensor", sensor, "OR('Org1.member','Org2.member','Org3.member')"); err != nil {
		log.Fatal(err)
	}
	net.Start()
	defer net.Stop()

	alice, err := net.NewClient("Org1", "alice", []string{"Org1"})
	if err != nil {
		log.Fatal(err)
	}
	bob, err := net.NewClient("Org2", "bob", []string{"Org2"})
	if err != nil {
		log.Fatal(err)
	}

	// Submit two conflicting updates to the same key at the same time.
	// On stock Fabric one of these would fail MVCC validation.
	var wg sync.WaitGroup
	for _, sub := range []struct {
		who  *fabriccrdt.Client
		name string
		temp string
	}{
		{alice, "alice", "15"},
		{bob, "bob", "20"},
	} {
		wg.Add(1)
		go func(c *fabriccrdt.Client, name, temp string) {
			defer wg.Done()
			code, err := c.SubmitAndWait(10*time.Second, "sensor",
				[]byte("record"), []byte("Device1"), []byte(temp))
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Printf("%s's update (temperature %s) committed: %s\n", name, temp, code)
		}(sub.who, sub.name, sub.temp)
	}
	wg.Wait()
	net.Stop()

	// Every peer converged to the same merged document with BOTH readings.
	for _, p := range net.Peers() {
		vv, ok := p.DB().Get("Device1")
		if !ok {
			log.Fatalf("%s: Device1 missing", p.Name())
		}
		fmt.Printf("%-12s %s\n", p.Name(), vv.Value)
	}

	// The merge metadata is inspectable too.
	doc, err := fabriccrdt.LoadMergedDoc(net.Peers()[0], "Device1")
	if err != nil {
		log.Fatal(err)
	}
	if doc != nil {
		fmt.Printf("CRDT document: %d operations applied\n", doc.AppliedCount())
	}
}
