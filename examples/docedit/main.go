// Collaborative document editing — the paper's §6 flagship use case for a
// CRDT-enabled blockchain. Two layers are shown:
//
//  1. The JSON CRDT library directly: two replicas edit one document
//     offline — including edits that conflict — exchange operations in
//     opposite orders, and converge without losing either author's work.
//
//  2. FabricCRDT as the trust layer: both authors then publish their edit
//     batches as CRDT transactions; the peers merge them into one
//     blockchain-backed document.
//
//     go run ./examples/docedit
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"fabriccrdt"
)

func main() {
	replicaConvergenceDemo()
	blockchainDemo()
}

// replicaConvergenceDemo drives the op-based JSON CRDT API.
func replicaConvergenceDemo() {
	fmt.Println("— offline replicas —")
	alice := fabriccrdt.NewJSONDoc("alice", fabriccrdt.WithOpLog())
	bob := fabriccrdt.NewJSONDoc("bob", fabriccrdt.WithOpLog())

	// Shared starting point: alice creates the outline and syncs to bob.
	must(alice.Assign("Middleware Reading List", "title"))
	mustOp(alice.Append("FabricCRDT", "papers"))
	for _, op := range alice.TakeOps() {
		if err := bob.ApplyOp(op); err != nil {
			log.Fatal(err)
		}
	}

	// Concurrent, conflicting edits while disconnected:
	must(alice.Assign("Reading List (curated)", "title")) // alice renames...
	must(bob.Assign("Reading List (draft)", "title"))     // ...and so does bob
	mustOp(alice.Append("StreamChain", "papers"))         // both append
	mustOp(bob.Append("FastFabric", "papers"))
	mustOp(bob.Delete("papers", "0")) // bob deletes the first entry

	// Exchange operation logs in OPPOSITE orders.
	aliceOps, bobOps := alice.TakeOps(), bob.TakeOps()
	for _, op := range bobOps {
		if err := alice.ApplyOp(op); err != nil {
			log.Fatal(err)
		}
	}
	for _, op := range aliceOps {
		if err := bob.ApplyOp(op); err != nil {
			log.Fatal(err)
		}
	}

	aliceJSON, _ := json.Marshal(alice.ToJSON())
	bobJSON, _ := json.Marshal(bob.ToJSON())
	fmt.Printf("alice: %s\n", aliceJSON)
	fmt.Printf("bob:   %s\n", bobJSON)
	if string(aliceJSON) != string(bobJSON) {
		log.Fatal("replicas diverged!")
	}
	fmt.Println("replicas converged; conflicting title renames kept deterministically:")
	for _, c := range alice.ConflictsAt("title") {
		fmt.Printf("  concurrent title %q (op %s)\n", c.Value, c.ID)
	}
	fmt.Println()
}

// blockchainDemo publishes concurrent edit batches through FabricCRDT.
func blockchainDemo() {
	fmt.Println("— FabricCRDT as the trust layer —")
	cfg := fabriccrdt.PaperTopology(25, true)
	cfg.Orderer.BatchTimeout = 200 * time.Millisecond
	net, err := fabriccrdt.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	editCC := fabriccrdt.ChaincodeFunc(func(stub fabriccrdt.ChaincodeStub) error {
		_, params := stub.Function()
		docKey, editJSON := params[0], params[1]
		if _, err := stub.GetState(docKey); err != nil {
			return err
		}
		return stub.PutCRDT(docKey, []byte(editJSON))
	})
	if err := net.InstallChaincode("docs", editCC, "OR('Org1.member','Org2.member')"); err != nil {
		log.Fatal(err)
	}
	net.Start()
	defer net.Stop()

	alice, err := net.NewClient("Org1", "alice", []string{"Org1"})
	if err != nil {
		log.Fatal(err)
	}
	bob, err := net.NewClient("Org2", "bob", []string{"Org2"})
	if err != nil {
		log.Fatal(err)
	}

	edits := []struct {
		cli  *fabriccrdt.Client
		edit string
	}{
		{alice, `{"sections":[{"heading":"Introduction","author":"alice"}]}`},
		{bob, `{"sections":[{"heading":"Evaluation","author":"bob"}]}`},
		{alice, `{"sections":[{"heading":"Design","author":"alice"}]}`},
	}
	done := make(chan error, len(edits))
	for _, e := range edits {
		go func(cli *fabriccrdt.Client, edit string) {
			_, err := cli.SubmitAndWait(10*time.Second, "docs", []byte("edit"), []byte("paper-draft"), []byte(edit))
			done <- err
		}(e.cli, e.edit)
	}
	for range edits {
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
	net.Stop()

	vv, ok := net.Peers()[0].DB().Get("paper-draft")
	if !ok {
		log.Fatal("document missing")
	}
	var doc map[string]any
	if err := json.Unmarshal(vv.Value, &doc); err != nil {
		log.Fatal(err)
	}
	sections := doc["sections"].([]any)
	fmt.Printf("blockchain document has %d sections (no edit lost):\n", len(sections))
	for _, s := range sections {
		sec := s.(map[string]any)
		fmt.Printf("  %-14s by %s\n", sec["heading"], sec["author"])
	}
}

func must(_ fabriccrdt.JSONOp, err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustOp(_ fabriccrdt.JSONOp, err error) {
	if err != nil {
		log.Fatal(err)
	}
}
