// Supply-chain monitoring — the paper's §6 pharma/food traceability use
// case: goods move through custody of three organizations (producer,
// carrier, pharmacy); temperature and humidity sensors from DIFFERENT
// organizations concurrently append condition records to each shipment's
// document under a cross-org endorsement policy. FabricCRDT merges the
// concurrent records, so resource-constrained sensors never resubmit, and a
// compliance check runs over the complete record.
//
//	go run ./examples/supplychain
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"strconv"
	"sync"
	"time"

	"fabriccrdt"
)

const shipments = 3

func main() {
	cfg := fabriccrdt.PaperTopology(25, true)
	cfg.Orderer.BatchTimeout = 250 * time.Millisecond
	net, err := fabriccrdt.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Recording requires endorsement by at least two of the three parties.
	policy := "OutOf(2,'Org1.member','Org2.member','Org3.member')"
	if err := net.InstallChaincode("custody", custodyChaincode(), policy); err != nil {
		log.Fatal(err)
	}
	net.Start()
	defer net.Stop()

	// One sensor client per (org, modality).
	type sensor struct {
		cli      *fabriccrdt.Client
		org      string
		modality string
	}
	var sensors []sensor
	for i, org := range []string{"Org1", "Org2", "Org3"} {
		for _, modality := range []string{"temperature", "humidity"} {
			cli, err := net.NewClient(org, fmt.Sprintf("%s-%s", org, modality), []string{"Org1", "Org2", "Org3"}[i%3:i%3+1])
			if err != nil {
				log.Fatal(err)
			}
			// Each client endorses via two orgs to satisfy OutOf(2, ...).
			cli2, err := net.NewClient(org, fmt.Sprintf("%s-%s-2", org, modality), []string{"Org1", "Org2"})
			if err != nil {
				log.Fatal(err)
			}
			_ = cli
			sensors = append(sensors, sensor{cli: cli2, org: org, modality: modality})
		}
	}

	var wg sync.WaitGroup
	for sh := 0; sh < shipments; sh++ {
		for si, s := range sensors {
			wg.Add(1)
			go func(sh, si int, s sensor) {
				defer wg.Done()
				value := strconv.Itoa(2 + (sh+si)%8)
				if s.modality == "humidity" {
					value = strconv.Itoa(35 + (sh*si)%20)
				}
				_, err := s.cli.SubmitAndWait(30*time.Second, "custody",
					[]byte("record"),
					[]byte(fmt.Sprintf("shipment-%d", sh)),
					[]byte(s.org), []byte(s.modality), []byte(value))
				if err != nil {
					log.Fatalf("shipment %d %s/%s: %v", sh, s.org, s.modality, err)
				}
			}(sh, si, s)
		}
	}
	wg.Wait()
	net.Stop()
	if err := net.Err(); err != nil {
		log.Fatal(err)
	}

	// Compliance audit over the merged custody records.
	p := net.Peers()[0]
	for sh := 0; sh < shipments; sh++ {
		key := fmt.Sprintf("shipment-%d", sh)
		vv, ok := p.DB().Get(key)
		if !ok {
			log.Fatalf("%s missing", key)
		}
		var doc map[string]any
		if err := json.Unmarshal(vv.Value, &doc); err != nil {
			log.Fatal(err)
		}
		records := doc["conditions"].([]any)
		compliant := true
		for _, r := range records {
			rec := r.(map[string]any)
			if rec["modality"] == "temperature" {
				if t, _ := strconv.Atoi(rec["value"].(string)); t > 8 {
					compliant = false
				}
			}
		}
		verdict := "COMPLIANT (2-8°C maintained)"
		if !compliant {
			verdict = "VIOLATION (temperature excursion recorded, immutably)"
		}
		fmt.Printf("%s: %d condition records from %d sensors — %s\n",
			key, len(records), len(sensors), verdict)
	}
}

// custodyChaincode appends one condition record to the shipment document.
func custodyChaincode() fabriccrdt.Chaincode {
	return fabriccrdt.ChaincodeFunc(func(stub fabriccrdt.ChaincodeStub) error {
		_, params := stub.Function()
		if len(params) != 4 {
			return fmt.Errorf("want [shipment org modality value], got %d", len(params))
		}
		shipment, org, modality, value := params[0], params[1], params[2], params[3]
		if _, err := stub.GetState(shipment); err != nil {
			return err
		}
		delta, err := json.Marshal(map[string]any{
			"shipmentID": shipment,
			"conditions": []any{map[string]any{
				"org": org, "modality": modality, "value": value,
			}},
		})
		if err != nil {
			return err
		}
		return stub.PutCRDT(shipment, delta)
	})
}
