// Double-spend limitation — the paper's §6 caveat, demonstrated live:
// asset-transfer workloads need the transactional isolation that MVCC
// provides, and FabricCRDT deliberately gives it up for CRDT transactions.
//
// The same attack runs against both systems: an attacker holds one coin and
// concurrently submits two transfers of it to two different merchants.
//
//   - Stock Fabric: MVCC validation commits one transfer; the second fails
//     with an MVCC conflict. The coin is spent once. ✓
//   - FabricCRDT (assets modeled as CRDT values): both transfers commit and
//     merge — the coin ends up recorded with both owners. ✗
//
// Moral: use CRDT transactions for mergeable data (readings, documents,
// sets), never for exclusive ownership.
//
//	go run ./examples/doublespend
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	"fabriccrdt"
)

func main() {
	fmt.Println("attack: transfer the SAME coin to merchantA and merchantB concurrently")
	runAttack(false)
	runAttack(true)
}

func runAttack(enableCRDT bool) {
	system := "Fabric    "
	if enableCRDT {
		system = "FabricCRDT"
	}
	cfg := fabriccrdt.PaperTopology(25, enableCRDT)
	cfg.Orderer.BatchTimeout = 200 * time.Millisecond
	net, err := fabriccrdt.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.InstallChaincode("coin", coinChaincode(), "OR('Org1.member','Org2.member','Org3.member')"); err != nil {
		log.Fatal(err)
	}
	net.Start()
	defer net.Stop()

	attacker, err := net.NewClient("Org1", "attacker", []string{"Org1"})
	if err != nil {
		log.Fatal(err)
	}

	// Mint the coin to the attacker.
	if _, err := attacker.SubmitAndWait(10*time.Second, "coin", []byte("mint"), []byte("coin-1"), []byte("attacker")); err != nil {
		log.Fatal(err)
	}

	// Fire both transfers concurrently so they land in one block with the
	// same read snapshot.
	outcomes := make([]string, 2)
	var wg sync.WaitGroup
	for i, merchant := range []string{"merchantA", "merchantB"} {
		wg.Add(1)
		go func(i int, merchant string) {
			defer wg.Done()
			code, err := attacker.SubmitAndWait(10*time.Second, "coin",
				[]byte("transfer"), []byte("coin-1"), []byte(merchant))
			switch {
			case err != nil:
				outcomes[i] = fmt.Sprintf("transfer to %s FAILED (%s)", merchant, code)
			default:
				outcomes[i] = fmt.Sprintf("transfer to %s committed (%s)", merchant, code)
			}
		}(i, merchant)
	}
	wg.Wait()
	net.Stop()
	if err := net.Err(); err != nil {
		log.Fatal(err)
	}

	vv, _ := net.Peers()[0].DB().Get("coin-1")
	var coin map[string]any
	if err := json.Unmarshal(vv.Value, &coin); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[%s]\n", system)
	for _, o := range outcomes {
		fmt.Println("  " + o)
	}
	owners := coin["owners"].([]any)
	fmt.Printf("  final coin state: owners=%v\n", owners)
	if len(owners) == 1 {
		fmt.Println("  => double spend PREVENTED (MVCC isolation)")
	} else {
		fmt.Println("  => double spend SUCCEEDED — CRDT merge kept both transfers!")
		fmt.Println("     (paper §6: asset transfers are a bad fit for CRDT transactions)")
	}
}

// coinChaincode models naive asset ownership. "transfer" REPLACES the owner
// list — on FabricCRDT the two concurrent owner-list appends merge, which
// is precisely the vulnerability the paper warns about.
func coinChaincode() fabriccrdt.Chaincode {
	return fabriccrdt.ChaincodeFunc(func(stub fabriccrdt.ChaincodeStub) error {
		fn, params := stub.Function()
		coinID := params[0]
		switch fn {
		case "mint":
			delta, err := json.Marshal(map[string]any{"owners": []any{params[1]}})
			if err != nil {
				return err
			}
			return stub.PutCRDT(coinID, delta)
		case "transfer":
			// Read the coin (recording the version the transfer depends
			// on), then write the new owner.
			if _, err := stub.GetState(coinID); err != nil {
				return err
			}
			delta, err := json.Marshal(map[string]any{"owners": []any{params[1]}})
			if err != nil {
				return err
			}
			return stub.PutCRDT(coinID, delta)
		default:
			return fmt.Errorf("unknown function %q", fn)
		}
	})
}
