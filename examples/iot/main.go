// IoT fleet example — the paper's §6 supply-/sensor-monitoring use case at
// application scale: a fleet of sensors concurrently streams readings into
// shared per-device documents. Every transaction conflicts with its
// neighbors, every transaction commits (no-failure requirement), and no
// reading is lost (no-update-loss requirement).
//
//	go run ./examples/iot
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	"fabriccrdt"
)

const (
	devices          = 4
	sensorsPerDevice = 5
	readingsEach     = 10
)

func main() {
	cfg := fabriccrdt.PaperTopology(25, true)
	cfg.Orderer.BatchTimeout = 250 * time.Millisecond
	net, err := fabriccrdt.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.InstallChaincode("telemetry", telemetryChaincode(),
		"OR('Org1.member','Org2.member','Org3.member')"); err != nil {
		log.Fatal(err)
	}
	net.Start()
	defer net.Stop()

	orgs := []string{"Org1", "Org2", "Org3"}
	start := time.Now()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		committed int
	)
	for d := 0; d < devices; d++ {
		for s := 0; s < sensorsPerDevice; s++ {
			cli, err := net.NewClient(orgs[(d+s)%len(orgs)], fmt.Sprintf("sensor-%d-%d", d, s), []string{orgs[(d+s)%len(orgs)]})
			if err != nil {
				log.Fatal(err)
			}
			wg.Add(1)
			go func(cli *fabriccrdt.Client, device, sensor int) {
				defer wg.Done()
				for r := 0; r < readingsEach; r++ {
					reading := fmt.Sprintf("%d.%d", 18+(sensor+r)%6, r)
					_, err := cli.SubmitAndWait(30*time.Second, "telemetry",
						[]byte("record"),
						[]byte(fmt.Sprintf("device-%d", device)),
						[]byte(fmt.Sprintf("sensor-%d", sensor)),
						[]byte(reading))
					if err != nil {
						log.Fatalf("device %d sensor %d: %v", device, sensor, err)
					}
					mu.Lock()
					committed++
					mu.Unlock()
				}
			}(cli, d, s)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	net.Stop()
	if err := net.Err(); err != nil {
		log.Fatal(err)
	}

	total := devices * sensorsPerDevice * readingsEach
	fmt.Printf("%d sensors streamed %d readings in %v — %d committed, 0 failed\n",
		devices*sensorsPerDevice, total, elapsed.Round(time.Millisecond), committed)

	// Inspect the converged documents: every reading from every sensor is
	// present on every peer.
	p := net.Peers()[0]
	for d := 0; d < devices; d++ {
		key := fmt.Sprintf("device-%d", d)
		vv, ok := p.DB().Get(key)
		if !ok {
			log.Fatalf("%s missing", key)
		}
		var doc map[string]any
		if err := json.Unmarshal(vv.Value, &doc); err != nil {
			log.Fatal(err)
		}
		readings := doc["readings"].([]any)
		if len(readings) != sensorsPerDevice*readingsEach {
			log.Fatalf("%s: %d readings, want %d (update loss!)", key, len(readings), sensorsPerDevice*readingsEach)
		}
		fmt.Printf("  %s: %d readings from %d sensors, all preserved\n", key, len(readings), sensorsPerDevice)
	}

	// All peers hold byte-identical state.
	ref, _ := p.DB().Get("device-0")
	for _, other := range net.Peers()[1:] {
		got, _ := other.DB().Get("device-0")
		if string(got.Value) != string(ref.Value) {
			log.Fatalf("%s diverged from %s", other.Name(), p.Name())
		}
	}
	fmt.Printf("all %d peers converged to identical documents\n", len(net.Peers()))
}

// telemetryChaincode appends {"sensor":..., "t":...} to the device's
// shared reading list.
func telemetryChaincode() fabriccrdt.Chaincode {
	return fabriccrdt.ChaincodeFunc(func(stub fabriccrdt.ChaincodeStub) error {
		_, params := stub.Function()
		if len(params) != 3 {
			return fmt.Errorf("want [device sensor reading], got %d args", len(params))
		}
		device, sensor, reading := params[0], params[1], params[2]
		if _, err := stub.GetState(device); err != nil {
			return err
		}
		delta, err := json.Marshal(map[string]any{
			"deviceID": device,
			"readings": []any{map[string]any{"sensor": sensor, "t": reading}},
		})
		if err != nil {
			return err
		}
		return stub.PutCRDT(device, delta)
	})
}
