// Global voting platform — one of the paper's §6 CRDT-enabled use cases,
// built on the typed-CRDT extension (the paper's future work: "we plan to
// extend FabricCRDT with more CRDTs"): vote tallies are grow-only counters
// and the voter roll is an observed-remove set. Hundreds of concurrent
// ballots hit the same two keys; every single one commits and every vote is
// counted.
//
//	go run ./examples/voting
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	"fabriccrdt"
)

const (
	voters     = 60
	candidates = 3
)

func main() {
	cfg := fabriccrdt.PaperTopology(25, true)
	cfg.Orderer.BatchTimeout = 250 * time.Millisecond
	net, err := fabriccrdt.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.InstallChaincode("ballot", ballotChaincode(),
		"OR('Org1.member','Org2.member','Org3.member')"); err != nil {
		log.Fatal(err)
	}
	net.Start()
	defer net.Stop()

	orgs := []string{"Org1", "Org2", "Org3"}
	var wg sync.WaitGroup
	for v := 0; v < voters; v++ {
		cli, err := net.NewClient(orgs[v%len(orgs)], fmt.Sprintf("voter-%d", v), []string{orgs[v%len(orgs)]})
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(cli *fabriccrdt.Client, v int) {
			defer wg.Done()
			candidate := fmt.Sprintf("candidate-%d", v%candidates)
			_, err := cli.SubmitAndWait(30*time.Second, "ballot",
				[]byte("vote"), []byte(candidate), []byte(fmt.Sprintf("voter-%d", v)))
			if err != nil {
				log.Fatalf("voter %d: %v", v, err)
			}
		}(cli, v)
	}
	wg.Wait()
	net.Stop()
	if err := net.Err(); err != nil {
		log.Fatal(err)
	}

	p := net.Peers()[0]
	fmt.Printf("%d concurrent ballots, 0 failed\n\ntally:\n", voters)
	total := 0
	for c := 0; c < candidates; c++ {
		key := fmt.Sprintf("tally/candidate-%d", c)
		vv, ok := p.DB().Get(key)
		if !ok {
			log.Fatalf("%s missing", key)
		}
		var count float64
		if err := json.Unmarshal(vv.Value, &count); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  candidate-%d: %3.0f votes\n", c, count)
		total += int(count)
	}
	if total != voters {
		log.Fatalf("counted %d votes, want %d — votes lost!", total, voters)
	}
	var roll []string
	vv, _ := p.DB().Get("voter-roll")
	if err := json.Unmarshal(vv.Value, &roll); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("voter roll: %d distinct voters recorded\n", len(roll))
	fmt.Printf("every vote counted: %d/%d\n", total, voters)

	// The full counter state (per-ballot slots) is auditable on-chain.
	c, err := fabriccrdt.LoadTypedCRDT(p, "tally/candidate-0")
	if err != nil {
		log.Fatal(err)
	}
	if gc, ok := c.(*fabriccrdt.GCounter); ok {
		fmt.Printf("candidate-0 audit: counter state sums to %d\n", gc.Sum())
	}
}

// ballotChaincode records one vote: a G-Counter increment on the
// candidate's tally (slot = transaction ID, so concurrent ballots join by
// union) and an OR-Set insertion on the voter roll.
func ballotChaincode() fabriccrdt.Chaincode {
	return fabriccrdt.ChaincodeFunc(func(stub fabriccrdt.ChaincodeStub) error {
		fn, params := stub.Function()
		if fn != "vote" || len(params) != 2 {
			return fmt.Errorf("usage: vote <candidate> <voter>")
		}
		candidate, voter := params[0], params[1]

		tally := fabriccrdt.NewCRDTRegistry()
		c, err := tally.New("g-counter")
		if err != nil {
			return err
		}
		counter := c.(*fabriccrdt.GCounter)
		counter.Increment(stub.TxID(), 1)
		if err := stub.PutTypedCRDT("tally/"+candidate, counter); err != nil {
			return err
		}

		s, err := tally.New("or-set")
		if err != nil {
			return err
		}
		roll := s.(*fabriccrdt.ORSet)
		roll.Bind(stub.TxID())
		roll.Add(voter)
		return stub.PutTypedCRDT("voter-roll", roll)
	})
}
