GO ?= go

.PHONY: ci fmt vet build test race bench

ci: fmt vet build race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Commit-pipeline benchmark; refreshes BENCH_commit.json.
bench:
	$(GO) test -run xxx -bench BenchmarkCommitPipeline -benchtime=20x .
