GO ?= go

.PHONY: ci fmt vet lint build test race bench bench-smoke demo-persist test-wire smoke-multiproc fuzz-smoke

ci: fmt vet lint build race

fmt:
	@unformatted=$$(gofmt -s -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt -s needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-invariant analyzers (stdlib-only, see docs/ANALYZERS.md):
# deadlock, determinism, metricnames (the former scripts/check_metrics.sh)
# and wireerr. Non-zero exit on any unsuppressed finding.
lint:
	$(GO) run ./cmd/fabriccrdt-lint ./...

build:
	$(GO) build ./...

# vet and lint are part of the tier-1 gate: test and race refuse to run
# on code that does not pass both.
test: vet lint
	$(GO) test ./...

race: vet lint
	$(GO) test -race ./...

# Wire-transport gate: the transport conformance suite against BOTH
# implementations (in-process Node and TCP wire client/server) under
# -race, Chaos fault modes included; the network-level wire + Err-split
# regressions; and the multi-process tests (real orderer/peer/client
# processes over loopback sockets, kill -9 recovery to byte-identical
# state).
test-wire: vet
	$(GO) test -race ./internal/transport/... ./internal/wire/...
	$(GO) test -race -run 'TestWire|TestDeliverLoopHealsSeveredStream|TestCommitErrorIsFatalNotRetried' ./internal/fabricnet
	$(GO) test -run TestMultiProcess ./cmd/fabricnet

# Just the multi-process smoke: spawn orderer + peer binaries, submit
# transactions over real sockets, assert the committed height, and scrape
# the live peer's /metrics + /healthz (failing on malformed exposition).
# CI runs this as its own step so a wire regression is named in the job
# log.
smoke-multiproc:
	$(GO) test -run TestMultiProcessSmoke -v ./cmd/fabricnet

BENCHES = 'BenchmarkCommitPipeline|BenchmarkCommitBackends|BenchmarkCommitChannels|BenchmarkCommitAsync|BenchmarkCommitFinalize|BenchmarkCommitLSMCache'

# Commit-pipeline benchmark; refreshes BENCH_commit.json.
bench:
	$(GO) test -run xxx -bench $(BENCHES) -benchtime=20x .

# One quick pass of the commit benchmark per state backend (memory,
# sharded, disk with and without the block store, lsm), the worker sweep,
# the channel-scaling sweep (1/2/4/8 channels), the async-pipeline depth
# sweep (0/1/2/4), the finalize-scheduler sweep (conflict rate 0/25/100%
# at 1/2/4/8 finalize workers) and the LSM block-cache pair (dataset
# larger than the cache vs inside it) — enough for CI to refresh and
# archive BENCH_commit.json without a long benchmark run.
bench-smoke:
	$(GO) test -run xxx -bench $(BENCHES) -benchtime=3x .

# Short-budget coverage-guided fuzzing of the binary decoders — the
# wire-frame decoder and the LSM sorted-run block decoder — enough for CI
# to catch a decoder regression without a long fuzz run.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzReadFrame -fuzztime 10s ./internal/wire
	$(GO) test -run xxx -fuzz FuzzRunDecode -fuzztime 10s ./internal/statedb

# One short live-network run with durable peers and the block store on,
# against a throwaway datadir — proves the -backend disk -persist-blocks
# path end to end (CI runs this).
demo-persist:
	$(GO) run ./cmd/fabricnet -txs 60 -rate 600 -block 10 -clients 2 \
		-backend disk -datadir $$(mktemp -d) -persist-blocks
