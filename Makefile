GO ?= go

.PHONY: ci fmt vet build test race bench bench-smoke

ci: fmt vet build race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Commit-pipeline benchmark; refreshes BENCH_commit.json.
bench:
	$(GO) test -run xxx -bench 'BenchmarkCommitPipeline|BenchmarkCommitBackends|BenchmarkCommitChannels' -benchtime=20x .

# One quick pass of the commit benchmark per state backend (memory,
# sharded, disk), the worker sweep and the channel-scaling sweep
# (1/2/4/8 channels) — enough for CI to refresh and archive
# BENCH_commit.json without a long benchmark run.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkCommitPipeline|BenchmarkCommitBackends|BenchmarkCommitChannels' -benchtime=3x .
